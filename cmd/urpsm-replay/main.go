// Command urpsm-replay streams a workload file against a running
// urpsm-serve daemon, measuring client-observed request latency — and, in
// -lockstep mode, proving that the served decisions are bit-identical to
// an offline sim.Engine run of the same instance (DESIGN.md §9.3).
//
//	urpsm-replay -net city.net -load city.load -addr :8650 -lockstep
//	urpsm-replay -net city.net -load city.load -addr :8650 -speedup 60
//
// Modes:
//
//   - -lockstep: requests are sent strictly sequentially in release order
//     (each waits for its decision), which pins the server's processing
//     order to the offline engine's; afterwards every accept/reject
//     decision, worker assignment and Δ* is compared bit-for-bit against
//     the offline reference. Exit status 1 on any mismatch.
//
//   - -speedup S: requests are fired concurrently on the workload's own
//     release schedule compressed by S (e.g. 60 = an hour of trace per
//     minute), exercising the batching window under load. S = 0 streams
//     as fast as the server admits. No equivalence claim is made —
//     concurrent delivery may reorder arrivals (see DESIGN.md §9.3).
//
//   - -rate R1,R2,...: open-loop saturation sweep (DESIGN.md §15). The
//     trace's requests are recycled as a synthetic arrival process at
//     each offered load for -duration, arrivals never waiting on
//     completions, and the resulting goodput/shed/latency curve is
//     emitted as JSON (FORMATS.md §10) with the throughput knee.
//
// Closed-loop modes retry 429/503 responses with jittered exponential
// backoff honoring the server's Retry-After hint (-retries bounds the
// attempts); the retry total is reported in the summary. The open-loop
// mode never retries — shed verdicts are the measurement.
//
// Both replay modes report accepted/rejected counts and p50/p95/p99
// latency.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		netFile  = flag.String("net", "", "road-network file (required)")
		loadFile = flag.String("load", "", "workload file with the requests to replay (required)")
		traffic  = flag.String("traffic", "", "traffic profile (urpsm-traffic format) injected via POST /v1/traffic on the trace's schedule")
		addr     = flag.String("addr", "127.0.0.1:8650", "server address (host:port or URL)")
		oracle   = cliutil.OracleFlag("auto")
		speedup  = flag.Float64("speedup", 0, "replay speed: 0 = as fast as possible, S = trace time compressed by S")
		lockstep = flag.Bool("lockstep", false, "sequential replay + bit-identical comparison against an offline sim.Engine run")
		n        = flag.Int("n", 0, "replay only the first n requests (0 = all)")
		parallel = flag.Int("parallel", 0, "pool size of the offline reference planner (must match the server's -parallel; ≤1 = serial)")
		alpha    = flag.Float64("alpha", 1, "unified-cost weight α of the offline reference (must match the server)")
		wait     = flag.Duration("wait", 10*time.Second, "how long to wait for the server to come up")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		explain  = flag.Int64("explain", -1, "after the replay, fetch GET /v1/decisions/{id}/explain for this request id and print it (requires server tracing; -1 = off)")
		retries  = flag.Int("retries", 4, "closed-loop: max resends per request on 429/503, with jittered exponential backoff honoring Retry-After (0 = fail on the first shed)")
		seed     = flag.Int64("seed", 1, "seed of the open-loop arrival schedule and the backoff jitter")
		rates    = flag.String("rate", "", "open-loop saturation mode: comma-separated offered loads in req/s to sweep (emits a JSON rate curve instead of replaying the trace's schedule)")
		satDur   = flag.Duration("duration", 5*time.Second, "open-loop: measurement window per swept rate")
		arrivals = flag.String("arrivals", "poisson", "open-loop arrival process: poisson | constant")
		outFile  = flag.String("out", "", "open-loop: write the JSON rate curve here (default stdout)")
	)
	flag.Parse()
	sat := satOpts{rates: *rates, duration: *satDur, arrivals: *arrivals, out: *outFile}
	if err := run(*netFile, *loadFile, *traffic, *addr, *oracle, *speedup, *n, *parallel,
		*alpha, *wait, *timeout, *lockstep, *explain, *retries, *seed, sat); err != nil {
		fmt.Fprintln(os.Stderr, "urpsm-replay:", err)
		os.Exit(1)
	}
}

// satOpts groups the open-loop saturation flags.
type satOpts struct {
	rates    string
	duration time.Duration
	arrivals string
	out      string
}

// outcome pairs a decision with its client-observed latency.
type outcome struct {
	d       serve.Decision
	rttMs   float64
	httpErr error
}

func run(netFile, loadFile, trafficFile, addr, oracleKind string, speedup float64, n, parallel int,
	alpha float64, wait, timeout time.Duration, lockstep bool, explainID int64,
	retries int, seed int64, sat satOpts) error {
	if netFile == "" || loadFile == "" {
		return fmt.Errorf("-net and -load are required")
	}
	if sat.rates != "" && lockstep {
		return fmt.Errorf("-rate (open loop) and -lockstep are mutually exclusive")
	}
	if sat.rates != "" && trafficFile != "" {
		return fmt.Errorf("-traffic is not supported in open-loop -rate mode")
	}
	if err := cliutil.CheckOracle(oracleKind); err != nil {
		return err
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	nf, err := os.Open(netFile)
	if err != nil {
		return err
	}
	g, err := roadnet.Read(nf)
	nf.Close()
	if err != nil {
		return err
	}
	lf, err := os.Open(loadFile)
	if err != nil {
		return err
	}
	inst, err := workload.ReadStream(lf, g)
	lf.Close()
	if err != nil {
		return err
	}

	// Replay in the engine's processing order: stable by release. With a
	// -n cap the offline reference sees the same truncated instance.
	reqs := append([]*core.Request(nil), inst.Requests...)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Release < reqs[j].Release })
	if n > 0 && n < len(reqs) {
		reqs = reqs[:n]
	}
	if len(reqs) == 0 {
		return fmt.Errorf("no requests to replay")
	}

	// An injected traffic profile follows the engine's timeline rule: an
	// event fires before the first request released at or after its time.
	// Events dated after the last request could not influence any
	// decision, so they are dropped from both sides of the comparison.
	var profile *roadnet.TrafficProfile
	if trafficFile != "" {
		tf, err := os.Open(trafficFile)
		if err != nil {
			return err
		}
		profile, err = roadnet.ReadTrafficProfile(tf, g)
		tf.Close()
		if err != nil {
			return err
		}
		lastRelease := reqs[len(reqs)-1].Release
		kept := profile.Events[:0]
		for _, e := range profile.Events {
			if e.At <= lastRelease {
				kept = append(kept, e)
			}
		}
		if dropped := len(profile.Events) - len(kept); dropped > 0 {
			fmt.Printf("traffic: dropping %d event(s) dated after the last request\n", dropped)
		}
		profile.Events = kept
	}

	client := &http.Client{Timeout: timeout}
	if err := waitReady(client, base, wait); err != nil {
		return err
	}

	if sat.rates != "" {
		rateList, err := parseRates(sat.rates)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saturation sweep: %d rate(s), %s per point, %s arrivals, against %s\n",
			len(rateList), sat.duration, sat.arrivals, base)
		return runSaturation(client, base, reqs, rateList, sat.duration, sat.arrivals, seed, sat.out)
	}

	fmt.Printf("replaying %d requests from %s to %s (mode: %s)\n",
		len(reqs), loadFile, base, mode(lockstep, speedup))

	rt := &retrier{client: client, base: base, max: retries,
		rng: rand.New(rand.NewSource(seed))}
	start := time.Now()
	var outcomes []outcome
	if lockstep {
		outcomes, err = replaySequential(rt, reqs, profile)
	} else {
		outcomes, err = replayPaced(rt, reqs, profile, speedup)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	accepted, rejected, failed := 0, 0, 0
	var lat []float64
	for _, o := range outcomes {
		if o.httpErr != nil {
			failed++
			continue
		}
		lat = append(lat, o.rttMs)
		if o.d.Accepted {
			accepted++
		} else {
			rejected++
		}
	}
	fmt.Printf("done in %.2fs: %d accepted, %d rejected, %d failed (%.0f req/s)\n",
		elapsed.Seconds(), accepted, rejected, failed,
		float64(len(outcomes))/elapsed.Seconds())
	if nr := rt.retries.Load(); nr > 0 {
		fmt.Printf("retries: %d resend(s) after 429/503, backoff honored Retry-After\n", nr)
	}
	fmt.Printf("latency ms: p50=%.3f p95=%.3f p99=%.3f\n",
		sim.Percentile(lat, 0.50), sim.Percentile(lat, 0.95), sim.Percentile(lat, 0.99))
	if failed > 0 {
		return fmt.Errorf("%d requests failed", failed)
	}
	if explainID >= 0 {
		if err := fetchExplain(client, base, explainID); err != nil {
			return err
		}
	}

	if !lockstep {
		return nil
	}
	oracle, resolved, err := cliutil.BuildOracle(oracleKind, g)
	if err != nil {
		return err
	}
	offInst := &workload.Instance{Graph: g, Workers: inst.Workers, Requests: reqs}
	want, _, err := serve.OfflineDecisions(g, offInst, oracle, resolved, alpha, parallel, profile)
	if err != nil {
		return err
	}
	mismatches := 0
	for _, o := range outcomes {
		w, ok := want[o.d.ID]
		if !ok {
			mismatches++
			if mismatches <= 5 {
				fmt.Fprintf(os.Stderr, "request %d: no offline decision\n", o.d.ID)
			}
			continue
		}
		if o.d.Accepted != w.Accepted || o.d.Worker != w.Worker || o.d.Delta != w.Delta {
			mismatches++
			if mismatches <= 5 {
				fmt.Fprintf(os.Stderr,
					"request %d: served (accepted=%v worker=%d delta=%v) != offline (accepted=%v worker=%d delta=%v)\n",
					o.d.ID, o.d.Accepted, o.d.Worker, o.d.Delta, w.Accepted, w.Worker, w.Delta)
			}
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("lockstep FAILED: %d/%d decisions differ from the offline engine", mismatches, len(outcomes))
	}
	fmt.Printf("lockstep OK: %d decisions bit-identical to the offline engine (oracle=%s)\n",
		len(outcomes), resolved)
	return nil
}

func mode(lockstep bool, speedup float64) string {
	if lockstep {
		return "lockstep"
	}
	if speedup > 0 {
		return fmt.Sprintf("paced, speedup %gx", speedup)
	}
	return "paced, full speed"
}

// fetchExplain prints the server's decision introspection for one
// request (GET /v1/decisions/{id}/explain, FORMATS.md §9) — candidate
// counts, Lemma 8 prunes, the chosen insertion and the Eq. 2 marginal
// economics, or the rejection reason.
func fetchExplain(client *http.Client, base string, id int64) error {
	resp, err := client.Get(fmt.Sprintf("%s/v1/decisions/%d/explain", base, id))
	if err != nil {
		return fmt.Errorf("explain %d: %w", id, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("explain %d: %w", id, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("explain %d: status %d: %s", id, resp.StatusCode, bytes.TrimSpace(body))
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, body, "", "  "); err != nil {
		return fmt.Errorf("explain %d: %w", id, err)
	}
	fmt.Printf("explain %d:\n%s\n", id, buf.String())
	return nil
}

// waitReady polls /v1/stats until the server answers.
func waitReady(client *http.Client, base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(base + "/v1/stats")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s", base, wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// parseRates splits the -rate list into offered loads.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -rate entry %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rate lists no rates")
	}
	return out, nil
}

// postDecision posts one request and classifies the response. 200 and
// 429 carry a Decision body; 503 comes back as a bare status for the
// retrier; any other status is an error carrying the server's message.
// Transport and decode failures are errors.
func postDecision(client *http.Client, base string, wire serve.Request) (serve.Decision, int, time.Duration, error) {
	body, err := json.Marshal(wire)
	if err != nil {
		return serve.Decision{}, 0, 0, err
	}
	resp, err := client.Post(base+"/v1/requests", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.Decision{}, 0, 0, err
	}
	defer resp.Body.Close()
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusTooManyRequests:
		var d serve.Decision
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			return serve.Decision{}, resp.StatusCode, retryAfter, err
		}
		return d, resp.StatusCode, retryAfter, nil
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return serve.Decision{}, resp.StatusCode, retryAfter, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return serve.Decision{}, resp.StatusCode, retryAfter,
			fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
}

// retrier resends shed (429) and unavailable (503) requests with
// jittered exponential backoff, honoring the server's Retry-After hint
// (DESIGN.md §15). The jitter draws from a seeded source so runs are
// reproducible; the sleep is max(hint, 50ms·2^attempt, capped at 5s)
// plus up to a quarter of that in jitter to de-synchronize clients.
type retrier struct {
	client  *http.Client
	base    string
	max     int // resends allowed per request
	mu      sync.Mutex
	rng     *rand.Rand
	retries atomic.Int64
}

func (rt *retrier) backoff(attempt int, hint time.Duration) time.Duration {
	d := 50 * time.Millisecond << uint(min(attempt, 10))
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	if hint > d {
		d = hint
	}
	rt.mu.Lock()
	jitter := time.Duration(rt.rng.Int63n(int64(d)/4 + 1))
	rt.mu.Unlock()
	return d + jitter
}

// send posts one request until it is decided, shed past the retry
// budget, or failed. The reported latency spans all attempts including
// backoff sleeps — the client-observed time to a verdict.
func (rt *retrier) send(r *core.Request) outcome {
	id := int32(r.ID)
	rel := r.Release
	wire := serve.Request{
		ID: &id, Origin: int64(r.Origin), Dest: int64(r.Dest),
		Release: &rel, Deadline: r.Deadline, Penalty: r.Penalty, Capacity: r.Capacity,
	}
	start := time.Now()
	for attempt := 0; ; attempt++ {
		d, status, hint, err := postDecision(rt.client, rt.base, wire)
		if err != nil {
			return outcome{httpErr: err}
		}
		switch status {
		case http.StatusOK:
			return outcome{d: d, rttMs: float64(time.Since(start).Nanoseconds()) / 1e6}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if ra := time.Duration(d.RetryAfterMs) * time.Millisecond; ra > hint {
				hint = ra
			}
			if attempt >= rt.max {
				return outcome{httpErr: fmt.Errorf(
					"status %d after %d attempt(s): shed by the server; raise -retries or lower the offered load",
					status, attempt+1)}
			}
			rt.retries.Add(1)
			time.Sleep(rt.backoff(attempt, hint))
		default:
			return outcome{httpErr: fmt.Errorf("unexpected status %d", status)}
		}
	}
}

// sendTraffic posts one traffic event (at its trace time) and fails hard
// on rejection: a half-injected profile would silently void the
// equivalence comparison.
func sendTraffic(client *http.Client, base string, e roadnet.TrafficEvent) error {
	at := e.At
	body, _ := json.Marshal(serve.TrafficRequest{At: &at, Updates: e.Updates})
	resp, err := client.Post(base+"/v1/traffic", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("traffic event at %v: %w", e.At, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("traffic event at %v: status %d: %s", e.At, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var tr serve.TrafficResult
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return fmt.Errorf("traffic event at %v: %w", e.At, err)
	}
	fmt.Printf("traffic: epoch %d at t=%g (%d edges changed, %d stops infeasible)\n",
		tr.Epoch, tr.SimTime, tr.ChangedEdges, tr.InfeasibleStops)
	return nil
}

// replaySequential sends each request only after the previous decision
// arrived, pinning the server's processing order for -lockstep. Traffic
// events are injected before the first request released at or after
// their time — exactly when the offline engine's timeline applies them.
func replaySequential(rt *retrier, reqs []*core.Request, profile *roadnet.TrafficProfile) ([]outcome, error) {
	outcomes := make([]outcome, 0, len(reqs))
	next := 0
	var events []roadnet.TrafficEvent
	if profile != nil {
		events = profile.Events
	}
	for _, r := range reqs {
		for next < len(events) && events[next].At <= r.Release {
			if err := sendTraffic(rt.client, rt.base, events[next]); err != nil {
				return nil, err
			}
			next++
		}
		o := rt.send(r)
		if o.httpErr != nil {
			// Sequential replay aborts on the first failure: every later
			// decision would diverge from the offline reference anyway.
			return nil, fmt.Errorf("request %d: %w", r.ID, o.httpErr)
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

// replayPaced fires requests on the trace's release schedule compressed
// by speedup (0 = no pacing), each from its own goroutine. Traffic events
// are injected inline on the same schedule (no equivalence claim in this
// mode; see DESIGN.md §9.3).
func replayPaced(rt *retrier, reqs []*core.Request, profile *roadnet.TrafficProfile, speedup float64) ([]outcome, error) {
	outcomes := make([]outcome, len(reqs))
	sem := make(chan struct{}, 256) // bound in-flight requests
	var wg sync.WaitGroup
	start := time.Now()
	t0 := reqs[0].Release
	next := 0
	var events []roadnet.TrafficEvent
	if profile != nil {
		events = profile.Events
	}
	for i, r := range reqs {
		for next < len(events) && events[next].At <= r.Release {
			if err := sendTraffic(rt.client, rt.base, events[next]); err != nil {
				return nil, err
			}
			next++
		}
		if speedup > 0 {
			due := start.Add(time.Duration((r.Release - t0) / speedup * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, r *core.Request) {
			defer wg.Done()
			outcomes[i] = rt.send(r)
			<-sem
		}(i, r)
	}
	wg.Wait()
	return outcomes, nil
}
