// Command urpsm-serve is the online dispatch daemon: it loads a road
// network and an initial fleet, then serves URPSM requests over HTTP with
// batched admission (see internal/serve and DESIGN.md §9).
//
//	urpsm-serve -net city.net -load city.load -oracle auto -addr :8650
//	urpsm-serve -net city.net -load city.load -batch-window 10ms -parallel 8
//	urpsm-serve -net city.net -load city.load -snapshot state.json
//
// The -load file supplies the fleet (its workers); its requests, if any,
// are ignored — live requests arrive via POST /v1/requests. With
// -snapshot the daemon warm-starts from the file when it exists and
// writes the final state back on graceful shutdown (SIGINT/SIGTERM), so a
// restart resumes exactly where the previous run stopped.
//
// With -wal DIR the daemon write-ahead-logs every admission, decision
// and traffic update to DIR/wal.log (fsynced once per admission batch,
// before any decision is acknowledged) and checkpoints to
// DIR/checkpoint.json. After a crash — kill -9 included — a restart
// replays the log tail through the same decide path as live traffic and
// resumes with identical state; a torn tail is discarded at the last
// complete commit group, which by construction holds nothing the server
// ever acknowledged. -wal and -snapshot are mutually exclusive (the
// checkpoint is the snapshot). See DESIGN.md §13 and FORMATS.md §7–8.
//
// Overload (DESIGN.md §15): with -max-queue N admission is bounded —
// beyond N pending requests the deterministic shed policy turns away
// the lowest-value request in sight (deadline-infeasible first, then
// lowest rejection penalty p_r) with HTTP 429 + Retry-After, WAL-logged
// so recovery and replay stay bit-exact under overload. With
// -degrade-target D the graceful-degradation ladder watches the p95
// per-batch plan time and sheds capacity in deterministic stages
// (smaller batches, serial dispatch, tighter queue) after
// -degrade-window consecutive breaches, recovering in reverse.
//
// API: POST /v1/requests, POST /v1/traffic, POST /v1/checkpoint,
// GET /v1/workers/{id}/route, GET /v1/decisions/{id}, GET /v1/stats,
// GET /v1/snapshot, GET /metrics (Prometheus text). See FORMATS.md §5.
//
// With -pprof ADDR the daemon additionally serves net/http/pprof on a
// separate listener (off by default; keep it loopback-only in
// production). See DESIGN.md §10.4 for the profiling walkthrough.
//
// Observability: the daemon keeps a flight recorder of the last
// -trace-events request-lifecycle events (GET /debug/trace, and
// GET /v1/decisions/{id}/explain for per-decision planner introspection);
// -log-level selects the verbosity of the structured stderr log. See
// DESIGN.md §14 and FORMATS.md §9.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/roadnet"
	"repro/internal/serve"
	"repro/internal/workload"
)

// version is stamped into the urpsm_build_info metric; override at build
// time with -ldflags "-X main.version=v1.2.3".
var version = "dev"

func main() {
	var (
		netFile     = flag.String("net", "", "road-network file (urpsm-roadnet format, required)")
		loadFile    = flag.String("load", "", "workload file supplying the initial fleet (urpsm-workload format, required)")
		oracle      = cliutil.OracleFlag("auto")
		addr        = flag.String("addr", ":8650", "HTTP listen address")
		batchWindow = flag.Duration("batch-window", serve.DefaultBatchWindow, "max time a request waits for its admission batch")
		batchSize   = flag.Int("batch-size", serve.DefaultBatchSize, "flush an admission batch early at this many requests")
		maxQueue    = flag.Int("max-queue", 0, "bound the pending admission queue: beyond this many requests the lowest-value one is shed with HTTP 429 (0 = unbounded)")
		degTarget   = flag.Duration("degrade-target", 0, "p95 per-batch plan-time SLO driving the graceful-degradation ladder (0 = ladder disabled)")
		degWindow   = flag.Int("degrade-window", serve.DefaultDegradeWindow, "consecutive batches breaching (or clearing) the SLO before the ladder moves a stage")
		parallel    = flag.Int("parallel", 0, "plan with a parallel dispatcher pool of this size (≤1 = serial)")
		gridKm      = flag.Float64("grid", 2, "grid cell size g in km")
		alpha       = flag.Float64("alpha", 1, "unified-cost weight α")
		snapshot    = flag.String("snapshot", "", "state file: restored at startup when present, written on graceful shutdown")
		walDir      = flag.String("wal", "", "write-ahead-log directory: crash-safe durability with replay recovery (mutually exclusive with -snapshot)")
		walCkpt     = flag.Int64("wal-checkpoint-bytes", serve.DefaultCheckpointBytes, "auto-checkpoint once the log exceeds this size (negative = explicit POST /v1/checkpoint only)")
		asyncRb     = flag.Bool("async-rebuild", false, "rebuild the oracle in the background after POST /v1/traffic (live-tier queries meanwhile; mid-rebuild decisions lose bit-comparability; with -oracle cch the window is a millisecond customization, see DESIGN.md §11.4/§12)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		noPrefetch  = flag.Bool("no-batch-prefetch", false, "plan every admission batch with point distance queries instead of one prefetched many-to-many table (decisions are bit-identical either way, see DESIGN.md §16)")
		traceEv     = flag.Int("trace-events", serve.DefaultTraceEvents, "flight-recorder ring capacity in events for /debug/trace and explain (0 = tracing disabled)")
		logLevel    = cliutil.LogLevelFlag("info")
	)
	flag.Parse()
	if err := run(*netFile, *loadFile, *oracle, *addr, *batchWindow, *batchSize,
		*parallel, *gridKm, *alpha, *snapshot, *walDir, *walCkpt, *pprofAddr,
		*asyncRb, *noPrefetch, *traceEv, *logLevel,
		overload{maxQueue: *maxQueue, target: *degTarget, window: *degWindow}); err != nil {
		fmt.Fprintln(os.Stderr, "urpsm-serve:", err)
		os.Exit(1)
	}
}

// overload groups the bounded-admission and degradation-ladder knobs
// (DESIGN.md §15).
type overload struct {
	maxQueue int
	target   time.Duration
	window   int
}

func run(netFile, loadFile, oracleKind, addr string, batchWindow time.Duration,
	batchSize, parallel int, gridKm, alpha float64, snapshotFile, walDir string,
	walCkptBytes int64, pprofAddr string, asyncRebuild, noPrefetch bool,
	traceEvents int, logLevel string, ovl overload) error {
	if netFile == "" || loadFile == "" {
		return fmt.Errorf("-net and -load are required")
	}
	logger, err := cliutil.NewLogger(logLevel)
	if err != nil {
		return err
	}
	if walDir != "" && snapshotFile != "" {
		return fmt.Errorf("-wal and -snapshot are mutually exclusive (the WAL checkpoint is the snapshot)")
	}
	if err := cliutil.CheckOracle(oracleKind); err != nil {
		return err
	}
	nf, err := os.Open(netFile)
	if err != nil {
		return err
	}
	g, err := roadnet.Read(nf)
	nf.Close()
	if err != nil {
		return err
	}
	lf, err := os.Open(loadFile)
	if err != nil {
		return err
	}
	inst, err := workload.ReadStream(lf, g)
	lf.Close()
	if err != nil {
		return err
	}

	oracle, resolved, err := cliutil.BuildOracle(oracleKind, g)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Graph:           g,
		Workers:         inst.Workers,
		Oracle:          oracle,
		OracleKind:      resolved,
		Alpha:           alpha,
		CellMeters:      gridKm * 1000,
		BatchWindow:     batchWindow,
		BatchSize:       batchSize,
		MaxQueue:        ovl.maxQueue,
		DegradeTarget:   ovl.target,
		DegradeWindow:   ovl.window,
		Pool:            parallel,
		AsyncRebuild:    asyncRebuild,
		NoBatchPrefetch: noPrefetch,
		WALDir:          walDir,
		TraceEvents:     traceEvents,
		Logger:          logger,
		Version:         version,
	}
	if walDir != "" {
		cfg.CheckpointBytes = walCkptBytes
	}
	if snapshotFile != "" {
		if sf, err := os.Open(snapshotFile); err == nil {
			sn, rerr := serve.ReadSnapshot(sf)
			sf.Close()
			if rerr != nil {
				return fmt.Errorf("restore %s: %w", snapshotFile, rerr)
			}
			cfg.Snapshot = sn
			logger.Info("restored snapshot", "file", snapshotFile,
				"sim_time", sn.SimTime, "decided", sn.Accepted+sn.Rejected,
				"workers", len(sn.Workers))
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}

	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	if walDir != "" {
		st := srv.Stats()
		fmt.Printf("wal %s: recovered %d records (%d torn bytes discarded), state checkpointed\n",
			walDir, st.WALRecovered, st.WALTornBytes)
	}

	// Listen explicitly so the line below reports the actual bound
	// address: with -addr :0 (crash harness, tests) the kernel picks a
	// free port and clients parse it from this print.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// A hardened server: a stalled or malicious peer cannot hold a
	// connection open indefinitely (slowloris) or feed an unbounded
	// header. The write timeout must cover a full batch window — a
	// decision response legitimately blocks until its batch flushes —
	// so it scales with the window instead of cutting healthy requests
	// off. Request bodies are bounded per-handler with MaxBytesReader.
	writeTimeout := 2*batchWindow + 30*time.Second
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 16,
	}

	fmt.Printf("urpsm-serve on %s: net=%s |V|=%d |E|=%d workers=%d oracle=%s algo=%s batch-window=%s batch-size=%d max-queue=%d\n",
		ln.Addr(), netFile, g.NumVertices(), g.NumEdges(), len(inst.Workers),
		resolved, srv.Planner(), batchWindow, batchSize, ovl.maxQueue)

	errC := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errC <- err
		}
	}()

	// Optional profiling listener, separate from the service port so the
	// dispatch API surface never exposes pprof by accident.
	var pprofSrv *http.Server
	if pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Header-read timeout only: profile endpoints legitimately stream
		// for tens of seconds, so no write timeout here.
		pprofSrv = &http.Server{Addr: pprofAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		logger.Info("pprof listening", "url", "http://"+pprofAddr+"/debug/pprof/")
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errC <- fmt.Errorf("pprof: %w", err)
			}
		}()
	}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errC:
		return err
	case sig := <-sigC:
		logger.Info("draining", "signal", sig.String())
	}

	// Drain first (new submissions get 503, admitted ones are decided),
	// then let in-flight HTTP responses finish, then persist.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("pprof shutdown: %w", err)
		}
	}
	if snapshotFile != "" {
		if err := serve.SaveSnapshotFile(snapshotFile, srv.TakeSnapshot()); err != nil {
			return err
		}
		logger.Info("wrote snapshot", "file", snapshotFile)
	}
	if walDir != "" {
		// Server.Shutdown took the final checkpoint and truncated the log.
		logger.Info("wal final checkpoint written", "dir", walDir)
	}
	st := srv.Stats()
	fmt.Printf("served %d requests (%d accepted, %d rejected) over %d batches; unified cost %.0f\n",
		st.Requests, st.Accepted, st.Rejected, st.Batches, st.UnifiedCost)
	return nil
}
