// Command netgen generates, inspects and persists synthetic city road
// networks so experiment inputs can be replayed byte-for-byte.
//
// Usage:
//
//	netgen -rows 80 -cols 80 -o city.net           # generate and save
//	netgen -describe city.net                      # print statistics
//	netgen -preset nyc -scale 0.05 -o nyc.net      # preset network
//	netgen -preset chengdu -scale 0.05 -o c.net -workload c.load
//	                                               # network + request stream
//	netgen -rows 40 -cols 40 -dimacs city          # DIMACS export
//	                                               # (city.gr + city.co, see FORMATS.md §3)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/workload"
)

func main() {
	var (
		rows     = flag.Int("rows", 80, "grid rows")
		cols     = flag.Int("cols", 80, "grid columns")
		spacing  = flag.Float64("spacing", 150, "block spacing in meters")
		seed     = flag.Int64("seed", 1, "generator seed")
		preset   = flag.String("preset", "", "use a dataset preset instead: chengdu|nyc")
		scale    = flag.Float64("scale", 0.05, "preset scale factor")
		out      = flag.String("o", "", "write the network to this file")
		loadOut  = flag.String("workload", "", "also write a request/worker stream (presets only)")
		describe = flag.String("describe", "", "read a network file and print statistics")
		dimacs   = flag.String("dimacs", "", "also export the network as DIMACS <prefix>.gr + <prefix>.co")
	)
	flag.Parse()
	if err := run(*rows, *cols, *spacing, *seed, *preset, *scale, *out, *loadOut, *describe, *dimacs); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func run(rows, cols int, spacing float64, seed int64, preset string, scale float64, out, loadOut, describe, dimacs string) error {
	if describe != "" {
		f, err := os.Open(describe)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := roadnet.Read(f)
		if err != nil {
			return err
		}
		printStats(g)
		// -dimacs also works on described files, so existing .net files can
		// be converted without regeneration.
		return writeDIMACS(dimacs, g)
	}

	var cfg roadnet.GenConfig
	var params workload.Params
	havePreset := false
	switch strings.ToLower(preset) {
	case "":
		cfg = roadnet.DefaultGenConfig()
		cfg.Rows, cfg.Cols, cfg.Spacing, cfg.Seed = rows, cols, spacing, seed
	case "chengdu":
		params = workload.ChengduLike(scale)
		cfg = params.Net
		havePreset = true
	case "nyc":
		params = workload.NYCLike(scale)
		cfg = params.Net
		havePreset = true
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}
	g, err := roadnet.Generate(cfg)
	if err != nil {
		return err
	}
	printStats(g)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := roadnet.Write(f, g); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if err := writeDIMACS(dimacs, g); err != nil {
		return err
	}
	if loadOut != "" {
		if !havePreset {
			return fmt.Errorf("-workload requires -preset chengdu|nyc")
		}
		oracle := shortest.NewBiDijkstra(g)
		inst, err := workload.BuildOn(params, g, oracle.Dist)
		if err != nil {
			return err
		}
		f, err := os.Create(loadOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := workload.WriteStream(f, inst); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d workers, %d requests)\n", loadOut, len(inst.Workers), len(inst.Requests))
	}
	return nil
}

// writeDIMACS exports g as prefix.gr + prefix.co; a no-op for an empty
// prefix.
func writeDIMACS(prefix string, g *roadnet.Graph) error {
	if prefix == "" {
		return nil
	}
	grF, err := os.Create(prefix + ".gr")
	if err != nil {
		return err
	}
	defer grF.Close()
	coF, err := os.Create(prefix + ".co")
	if err != nil {
		return err
	}
	defer coF.Close()
	if err := roadnet.WriteDIMACS(grF, coF, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s.gr and %s.co\n", prefix, prefix)
	return nil
}

func printStats(g *roadnet.Graph) {
	b := g.Bounds()
	classes := map[geo.RoadClass]int{}
	totalKm := 0.0
	for _, e := range g.Edges() {
		classes[e.Class]++
		totalKm += e.Meters / 1000
	}
	fmt.Printf("vertices: %d\nedges: %d\nextent: %.1f x %.1f km\nroad length: %.1f km\n",
		g.NumVertices(), g.NumEdges(), b.Width()/1000, b.Height()/1000, totalKm)
	for c := geo.RoadClass(0); c < geo.NumRoadClasses; c++ {
		fmt.Printf("  %-12s %6d edges\n", c, classes[c])
	}
	// Preprocessing stats are only affordable for graphs the hub tier
	// accepts; beyond that report which oracle tier Auto would choose.
	budget := shortest.DefaultAutoBudget()
	if kind := budget.Choose(g.NumVertices()); kind != shortest.AutoHub {
		fmt.Printf("oracle tier (auto): %s — %d vertices exceed the hub-label budget of %d\n",
			kind, g.NumVertices(), budget.MaxHubVertices)
		return
	}
	hub := shortest.BuildHubLabels(g)
	fmt.Printf("hub labeling: avg %.1f hubs/vertex, %.1f MB\n",
		hub.AvgLabelSize(), float64(hub.MemoryBytes())/1e6)
}
