// Command urpsm-bench regenerates the tables and figures of the paper's
// evaluation (§6) on synthetic NYC-like and Chengdu-like workloads.
//
// Usage:
//
//	urpsm-bench -exp fig3 -dataset chengdu -scale 0.05 -repeat 3
//	urpsm-bench -exp all -dataset both -scale 0.02 -csv out/
//	urpsm-bench -exp parallel -dataset chengdu -parallel 8
//
// Experiments: table4, fig3 (vary |W|), fig4 (vary K_w), fig5 (vary grid
// size g, with index memory), fig6 (vary deadline e_r, with saved distance
// queries), fig7 (vary penalty p_r), hardness (§3.3 constructions),
// insertion (§4 operator scaling ablation), ablation (planner and oracle
// design-choice ablations), parallel (dispatcher throughput sweep over
// pool sizes), batchdist (point vs batched-table distance queries across
// admission-batch sizes), all.
//
// -parallel N plans pruneGreedyDP/GreedyDP with the N-goroutine parallel
// dispatcher in any experiment (decisions stay bit-identical to serial);
// -oracle picks the distance oracle, where "auto" selects the strongest
// tier whose preprocessing fits the graph size (see DESIGN.md §8.3).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/expt"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table4|fig3|fig4|fig5|fig6|fig7|hardness|insertion|ablation|parallel|batchdist|all")
		dataset  = flag.String("dataset", "both", "dataset: chengdu|nyc|both")
		scale    = flag.Float64("scale", 0.03, "workload scale factor in (0,1]")
		repeat   = flag.Int("repeat", 1, "repetitions per configuration (paper: 30)")
		algos    = flag.String("algos", strings.Join(expt.Algorithms, ","), "comma-separated algorithms")
		csvDir   = flag.String("csv", "", "also write CSV files into this directory")
		parallel = flag.Int("parallel", 0, "plan pruneGreedyDP/GreedyDP with a parallel dispatcher pool of this size (0 = serial); also the largest pool of -exp parallel")
		oracle   = cliutil.OracleFlag("hub")
		traceOut = cliutil.TraceFlag()
	)
	flag.Parse()
	if err := cliutil.CheckOracle(*oracle); err != nil {
		fmt.Fprintln(os.Stderr, "urpsm-bench:", err)
		os.Exit(1)
	}
	if err := run(*exp, *dataset, *scale, *repeat, splitList(*algos), *csvDir, *parallel, *oracle, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "urpsm-bench:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(exp, dataset string, scale float64, repeat int, algos []string, csvDir string, parallel int, oracle, traceFile string) error {
	var presets []workload.Params
	switch strings.ToLower(dataset) {
	case "chengdu":
		presets = []workload.Params{workload.ChengduLike(scale)}
	case "nyc":
		presets = []workload.Params{workload.NYCLike(scale)}
	case "both":
		presets = []workload.Params{workload.ChengduLike(scale), workload.NYCLike(scale)}
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}

	wantFig := func(name string) bool { return exp == name || exp == "all" }

	// One flight recorder shared by every runner: the file retains the
	// most recent plan events across all experiments and datasets.
	var rec *trace.Recorder
	if traceFile != "" {
		maxReq := 0
		for _, p := range presets {
			maxReq = max(maxReq, p.NumRequests)
		}
		rec = cliutil.NewRecorder(maxReq)
	}

	// Dataset-independent experiments first.
	if wantFig("insertion") {
		fmt.Println("== Insertion operator scaling (§4: cubic vs quadric vs linear) ==")
		pts, err := expt.InsertionScaling([]int{4, 8, 16, 32, 64, 128}, 200)
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatInsertionScaling(pts))
	}
	if wantFig("hardness") {
		fmt.Println("== Empirical hardness (§3.3, Theorem 1) ==")
		for _, v := range []workload.AdversaryVariant{
			workload.AdvServedCount, workload.AdvRevenue, workload.AdvDistance,
		} {
			pts, err := expt.Hardness(v, []int{4, 8, 16, 32, 64, 128}, 200)
			if err != nil {
				return err
			}
			fmt.Println(expt.FormatHardness(pts))
		}
	}

	var table4 []expt.DatasetStats
	for _, preset := range presets {
		fmt.Printf("== Dataset %s (scale %.3g): generating network and distance oracle ==\n", preset.Name, scale)
		runner, err := expt.NewRunner(preset, repeat)
		if err != nil {
			return err
		}
		runner.Parallel = parallel
		runner.OracleKind = oracle
		if rec != nil {
			runner.Observer = rec
		}
		desc, err := runner.OracleDescription()
		if err != nil {
			return err
		}
		fmt.Printf("   |V|=%d |E|=%d oracle=%s\n",
			runner.G.NumVertices(), runner.G.NumEdges(), desc)

		if wantFig("parallel") {
			pools := []int{2, 4, 8}
			if parallel > 1 && parallel != 2 && parallel != 4 && parallel != 8 {
				pools = append(pools, parallel)
			}
			pts, err := runner.ParallelSweep(pools)
			if err != nil {
				return err
			}
			fmt.Print(expt.FormatParallelSweep(preset.Name, pts))
			fmt.Println()
		}

		if wantFig("batchdist") {
			pts, err := runner.BatchDistSweep([]int{1, 4, 8, 16, 32})
			if err != nil {
				return err
			}
			fmt.Print(expt.FormatBatchDistSweep(preset.Name, pts))
			fmt.Println()
		}

		if wantFig("table4") {
			st, err := runner.Table4()
			if err != nil {
				return err
			}
			table4 = append(table4, st)
		}
		if wantFig("ablation") {
			if err := runAblations(runner); err != nil {
				return err
			}
		}
		type figFn struct {
			name string
			fn   func([]string) (expt.Series, error)
		}
		for _, f := range []figFn{
			{"fig3", runner.Fig3}, {"fig4", runner.Fig4}, {"fig5", runner.Fig5},
			{"fig6", runner.Fig6}, {"fig7", runner.Fig7},
		} {
			if !wantFig(f.name) {
				continue
			}
			s, err := f.fn(algos)
			if err != nil {
				return err
			}
			fmt.Print(expt.FormatSeries(s))
			if csvDir != "" {
				if err := writeCSV(csvDir, s); err != nil {
					return err
				}
			}
		}
	}
	if len(table4) > 0 {
		fmt.Println("== Table 4: dataset statistics ==")
		fmt.Println(expt.FormatTable4(table4))
	}
	if rec != nil {
		return cliutil.WriteTrace(traceFile, rec)
	}
	return nil
}

// runAblations prints the design-choice ablations DESIGN.md calls out:
// the insertion operator inside the full planner, the paper-strict
// decision rule, the local-search extension, and the distance oracle.
func runAblations(runner *expt.Runner) error {
	fmt.Printf("== Ablations (%s) ==\n", runner.Base.Name)
	fmt.Printf("%-24s %14s %10s %12s %14s\n",
		"variant", "unified cost", "served", "response", "dist queries")
	variants := append([]string{"pruneGreedyDP"}, expt.AblationAlgorithms...)
	for _, algo := range variants {
		m, err := runner.RunOne(runner.Base, algo)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %14.0f %9.1f%% %10.3fms %14d\n",
			algo, m.UnifiedCost, 100*m.ServedRate, m.AvgResponseMs, m.DistQueries)
	}
	fmt.Println("\noracle ablation (pruneGreedyDP):")
	fmt.Printf("%-24s %14s %10s %12s\n", "oracle", "unified cost", "served", "response")
	save := runner.OracleKind
	defer func() { runner.OracleKind = save }()
	for _, kind := range []string{"hub", "ch", "bidijkstra"} {
		runner.OracleKind = kind
		m, err := runner.RunOne(runner.Base, "pruneGreedyDP")
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %14.0f %9.1f%% %10.3fms\n",
			kind, m.UnifiedCost, 100*m.ServedRate, m.AvgResponseMs)
	}
	fmt.Println()
	return nil
}

func writeCSV(dir string, s expt.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", s.Figure, strings.ToLower(s.Dataset)))
	return os.WriteFile(name, []byte(expt.FormatSeriesCSV(s)), 0o644)
}
