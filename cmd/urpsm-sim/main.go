// Command urpsm-sim runs one shared-mobility simulation and prints its
// metrics — the quickest way to watch the algorithms against each other on
// a single configuration.
//
// It runs either a synthetic preset or an imported network + workload pair
// (files produced by cmd/netgen or cmd/urpsm-import):
//
//	urpsm-sim -dataset chengdu -scale 0.05 -algo pruneGreedyDP
//	urpsm-sim -dataset nyc -scale 0.02 -algo all -deadline 15 -workers 200
//	urpsm-sim -net city.net -load city.load -oracle auto -algo pruneGreedyDP
//	urpsm-sim -dataset chengdu -traffic rush.traffic -algo pruneGreedyDP
//
// -oracle picks the distance oracle (hub|cch|ch|bidijkstra|auto); "auto"
// selects the strongest tier whose preprocessing fits the graph size,
// which is the right default for imported real road networks (see
// DESIGN.md §8.3). -traffic replays a scheduled congestion trace
// (FORMATS.md §6) against the event clock: edge weights change
// mid-simulation, the oracle re-tiers per epoch and routes are repaired
// (DESIGN.md §11). -trace FILE attaches the planner flight recorder and
// writes the retained per-request plan events as JSON after the run
// (FORMATS.md §9); decisions are bit-identical with or without it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/expt"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

func main() {
	var (
		dataset  = flag.String("dataset", "chengdu", "dataset preset: chengdu|nyc (presets only)")
		scale    = flag.Float64("scale", 0.05, "workload scale factor in (0,1] (presets only)")
		algo     = flag.String("algo", "pruneGreedyDP", "algorithm name or 'all'")
		workers  = flag.Int("workers", 0, "override number of workers (0 = preset; presets only)")
		requests = flag.Int("requests", 0, "override number of requests (0 = preset; presets only)")
		deadline = flag.Float64("deadline", 0, "override deadline in minutes (0 = preset; presets only)")
		penalty  = flag.Float64("penalty", 0, "override penalty factor (0 = preset; presets only)")
		capacity = flag.Float64("capacity", 0, "override mean worker capacity (0 = preset; presets only)")
		gridKm   = flag.Float64("grid", 2, "grid cell size g in km")
		seed     = flag.Int64("seed", 0, "override workload seed (0 = preset; presets only)")
		repeat   = flag.Int("repeat", 1, "repetitions to average (presets only)")
		netFile  = flag.String("net", "", "run on this road-network file instead of a preset (urpsm-roadnet format)")
		loadFile = flag.String("load", "", "workload stream for -net (urpsm-workload format)")
		traffic  = flag.String("traffic", "", "replay this congestion trace (urpsm-traffic format) against the event clock")
		oracle   = cliutil.OracleFlag("") // default: hub for presets, auto for -net
		traceOut = cliutil.TraceFlag()
	)
	flag.Parse()
	err := cliutil.CheckOracle(*oracle)
	switch {
	case err != nil:
	case *netFile != "" || *loadFile != "":
		// Imported workloads are fully materialized: the preset knobs have
		// nothing to act on, so silently ignoring them would mislead.
		presetOnly := map[string]bool{
			"dataset": true, "scale": true, "workers": true, "requests": true,
			"deadline": true, "penalty": true, "capacity": true, "seed": true,
			"repeat": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if presetOnly[f.Name] && err == nil {
				err = fmt.Errorf("-%s applies to presets only; it cannot modify the -net/-load files "+
					"(re-import with different cmd/urpsm-import flags instead)", f.Name)
			}
		})
		if err == nil {
			err = runFiles(*netFile, *loadFile, *traffic, *algo, *oracle, *traceOut, *gridKm)
		}
	default:
		err = run(*dataset, *algo, *oracle, *traffic, *traceOut, *scale, *workers, *requests,
			*deadline, *penalty, *capacity, *gridKm, *seed, *repeat)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "urpsm-sim:", err)
		os.Exit(1)
	}
}

// algoList expands "all" into the paper's comparison set.
func algoList(algo string) []string {
	if algo == "all" {
		return expt.Algorithms
	}
	return []string{algo}
}

// loadTraffic parses and installs a congestion trace on the runner.
func loadTraffic(runner *expt.Runner, trafficFile string) error {
	if trafficFile == "" {
		return nil
	}
	tf, err := os.Open(trafficFile)
	if err != nil {
		return err
	}
	defer tf.Close()
	p, err := roadnet.ReadTrafficProfile(tf, runner.G)
	if err != nil {
		return err
	}
	runner.Traffic = p
	fmt.Printf("traffic=%s (%d scheduled events)\n", trafficFile, len(p.Events))
	return nil
}

// attachTrace wires a flight recorder onto the runner when -trace is
// set; the returned flush writes the ring after the run(s). With -algo
// all or -repeat > 1 every run shares the ring, so the file retains the
// most recent events across them.
func attachTrace(runner *expt.Runner, file string, requests int) func() error {
	if file == "" {
		return func() error { return nil }
	}
	rec := cliutil.NewRecorder(requests)
	runner.Observer = rec
	return func() error { return cliutil.WriteTrace(file, rec) }
}

// runFiles simulates an imported network + workload pair.
func runFiles(netFile, loadFile, trafficFile, algo, oracle, traceFile string, gridKm float64) error {
	if netFile == "" || loadFile == "" {
		return fmt.Errorf("-net and -load must be given together")
	}
	nf, err := os.Open(netFile)
	if err != nil {
		return err
	}
	defer nf.Close()
	g, err := roadnet.Read(nf)
	if err != nil {
		return err
	}
	lf, err := os.Open(loadFile)
	if err != nil {
		return err
	}
	defer lf.Close()
	inst, err := workload.ReadStream(lf, g)
	if err != nil {
		return err
	}

	runner := expt.NewRunnerOn(g, workload.Params{Name: netFile}, 1)
	runner.CellMeters = gridKm * 1000
	if oracle == "" {
		oracle = "auto" // imported networks may be beyond hub-label scale
	}
	runner.OracleKind = oracle
	desc, err := runner.OracleDescription()
	if err != nil {
		return err
	}
	if err := loadTraffic(runner, trafficFile); err != nil {
		return err
	}
	flushTrace := attachTrace(runner, traceFile, len(inst.Requests))
	fmt.Printf("net=%s |V|=%d |E|=%d requests=%d workers=%d oracle=%s\n",
		netFile, g.NumVertices(), g.NumEdges(), len(inst.Requests), len(inst.Workers), desc)
	for _, a := range algoList(algo) {
		m, err := runner.RunInstance(inst, a)
		if err != nil {
			return err
		}
		fmt.Println(m.String())
	}
	return flushTrace()
}

func run(dataset, algo, oracle, trafficFile, traceFile string, scale float64, workers, requests int,
	deadlineMin, penalty, capacity, gridKm float64, seed int64, repeat int) error {
	var p workload.Params
	switch strings.ToLower(dataset) {
	case "chengdu":
		p = workload.ChengduLike(scale)
	case "nyc":
		p = workload.NYCLike(scale)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if workers > 0 {
		p.NumWorkers = workers
	}
	if requests > 0 {
		p.NumRequests = requests
	}
	if deadlineMin > 0 {
		p.DeadlineSec = deadlineMin * 60
	}
	if penalty > 0 {
		p.PenaltyFactor = penalty
	}
	if capacity > 0 {
		p.CapacityMean = capacity
	}
	if seed != 0 {
		p.Seed = seed
	}

	runner, err := expt.NewRunner(p, repeat)
	if err != nil {
		return err
	}
	runner.CellMeters = gridKm * 1000
	if oracle != "" {
		runner.OracleKind = oracle
	}
	desc, err := runner.OracleDescription()
	if err != nil {
		return err
	}
	if err := loadTraffic(runner, trafficFile); err != nil {
		return err
	}
	flushTrace := attachTrace(runner, traceFile, p.NumRequests)
	fmt.Printf("dataset=%s |V|=%d |E|=%d requests=%d workers=%d deadline=%.0fs penalty=%.0fx oracle=%s\n",
		p.Name, runner.G.NumVertices(), runner.G.NumEdges(),
		p.NumRequests, p.NumWorkers, p.DeadlineSec, p.PenaltyFactor, desc)

	for _, a := range algoList(algo) {
		m, err := runner.RunOne(p, a)
		if err != nil {
			return err
		}
		fmt.Println(m.String())
	}
	return flushTrace()
}
