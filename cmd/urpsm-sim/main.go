// Command urpsm-sim runs one shared-mobility simulation and prints its
// metrics — the quickest way to watch the algorithms against each other on
// a single configuration.
//
// Usage:
//
//	urpsm-sim -dataset chengdu -scale 0.05 -algo pruneGreedyDP
//	urpsm-sim -dataset nyc -scale 0.02 -algo all -deadline 15 -workers 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/expt"
	"repro/internal/workload"
)

func main() {
	var (
		dataset  = flag.String("dataset", "chengdu", "dataset: chengdu|nyc")
		scale    = flag.Float64("scale", 0.05, "workload scale factor in (0,1]")
		algo     = flag.String("algo", "pruneGreedyDP", "algorithm name or 'all'")
		workers  = flag.Int("workers", 0, "override number of workers (0 = preset)")
		requests = flag.Int("requests", 0, "override number of requests (0 = preset)")
		deadline = flag.Float64("deadline", 0, "override deadline in minutes (0 = preset)")
		penalty  = flag.Float64("penalty", 0, "override penalty factor (0 = preset)")
		capacity = flag.Float64("capacity", 0, "override mean worker capacity (0 = preset)")
		gridKm   = flag.Float64("grid", 2, "grid cell size g in km")
		seed     = flag.Int64("seed", 0, "override workload seed (0 = preset)")
		repeat   = flag.Int("repeat", 1, "repetitions to average")
	)
	flag.Parse()
	if err := run(*dataset, *algo, *scale, *workers, *requests, *deadline,
		*penalty, *capacity, *gridKm, *seed, *repeat); err != nil {
		fmt.Fprintln(os.Stderr, "urpsm-sim:", err)
		os.Exit(1)
	}
}

func run(dataset, algo string, scale float64, workers, requests int,
	deadlineMin, penalty, capacity, gridKm float64, seed int64, repeat int) error {
	var p workload.Params
	switch strings.ToLower(dataset) {
	case "chengdu":
		p = workload.ChengduLike(scale)
	case "nyc":
		p = workload.NYCLike(scale)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if workers > 0 {
		p.NumWorkers = workers
	}
	if requests > 0 {
		p.NumRequests = requests
	}
	if deadlineMin > 0 {
		p.DeadlineSec = deadlineMin * 60
	}
	if penalty > 0 {
		p.PenaltyFactor = penalty
	}
	if capacity > 0 {
		p.CapacityMean = capacity
	}
	if seed != 0 {
		p.Seed = seed
	}

	runner, err := expt.NewRunner(p, repeat)
	if err != nil {
		return err
	}
	runner.CellMeters = gridKm * 1000
	fmt.Printf("dataset=%s |V|=%d |E|=%d requests=%d workers=%d deadline=%.0fs penalty=%.0fx\n",
		p.Name, runner.G.NumVertices(), runner.G.NumEdges(),
		p.NumRequests, p.NumWorkers, p.DeadlineSec, p.PenaltyFactor)

	algos := []string{algo}
	if algo == "all" {
		algos = expt.Algorithms
	}
	for _, a := range algos {
		m, err := runner.RunOne(p, a)
		if err != nil {
			return err
		}
		fmt.Println(m.String())
	}
	return nil
}
