package main

// Gate mode (-gate): compare a fresh `go test -bench` run on stdin
// against the last run recorded in a checked-in trajectory and fail if
// any shared benchmark regressed beyond the threshold. This is the
// mechanical form of "don't merge a perf PR that quietly gives the win
// back":
//
//	go test -run xxx -bench . . | benchjson -gate -baseline BENCH_PR9.json
//
// Comparison is by ns/op, matched on the benchmark name with the
// -GOMAXPROCS suffix stripped (the same benchmark on an 8-way and a
// 16-way box must still line up). When the recorded CPU model differs
// from the current one the gate degrades to a warning and passes:
// cross-machine ns/op ratios measure the hardware, not the patch.
// Same-machine ratios are corrected for uniform drift (see runGate)
// before the threshold applies.

import (
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
)

// gomaxprocsSuffix strips the trailing "-N" go test appends to
// benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// nsPerOp indexes a run's ns/op by suffix-stripped benchmark name. With
// `-count` repetitions the minimum wins: the fastest observation is the
// least-noise estimate of what the code costs (scheduler preemption,
// fsync latency and cache pollution only ever add time).
func nsPerOp(r Run) map[string]float64 {
	m := make(map[string]float64, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		v, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(b.Name, "")
		if prev, seen := m[name]; !seen || v < prev {
			m[name] = v
		}
	}
	return m
}

// runGate reads a candidate bench run from in and gates it against the
// newest run in the baseline trajectory. threshold is the allowed
// slowdown ratio (1.25 = fail beyond +25% ns/op).
func runGate(in io.Reader, baselinePath string, threshold float64) error {
	if baselinePath == "" {
		return fmt.Errorf("-gate requires -baseline")
	}
	if threshold <= 1 {
		return fmt.Errorf("-threshold %g must exceed 1", threshold)
	}
	if _, err := os.Stat(baselinePath); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	tr, err := loadTrajectory(baselinePath)
	if err != nil {
		return err
	}
	if len(tr.Runs) == 0 {
		return fmt.Errorf("baseline %s records no runs", baselinePath)
	}
	base := tr.Runs[len(tr.Runs)-1]

	cand, err := parseRun(in)
	if err != nil {
		return err
	}
	if len(cand.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	fmt.Printf("gate: candidate vs %s run %q (commit %s, %d benchmarks), threshold +%.0f%%\n",
		baselinePath, base.Label, base.Commit, len(base.Benchmarks), (threshold-1)*100)
	if base.CPU != "" && cand.CPU != "" && base.CPU != cand.CPU {
		fmt.Printf("gate: SKIPPED — baseline CPU %q != current %q; cross-machine ns/op is not comparable\n",
			base.CPU, cand.CPU)
		return nil
	}

	baseNs, candNs := nsPerOp(base), nsPerOp(cand)
	names := make([]string, 0, len(candNs))
	for name := range candNs {
		names = append(names, name)
	}
	sort.Strings(names)

	// Even on the same CPU model, shared or virtualized hardware drifts:
	// minutes apart, *everything* can measure 1.5x slower (noisy
	// neighbors, thermal state, host fsync load). A patch regression is
	// *relative* — one benchmark slowing while its peers do not — so the
	// gate divides every ratio by the geometric mean ratio across the
	// shared set. Uniform drift cancels exactly; a local regression
	// barely moves the mean and still trips the threshold. The trade is
	// explicit: a patch slowing every benchmark by the same factor reads
	// as drift and passes — the printed drift factor is the tell.
	var sumLog float64
	var compared, unmatched int
	for _, name := range names {
		if b, ok := baseNs[name]; ok && b > 0 {
			compared++
			sumLog += math.Log(candNs[name] / b)
		} else {
			unmatched++
		}
	}
	if compared == 0 {
		return fmt.Errorf("no benchmark shared between candidate and baseline — wrong -baseline?")
	}
	drift := math.Exp(sumLog / float64(compared))
	if compared < 5 {
		// Too few peers to tell drift from regression — with one shared
		// benchmark the geomean IS its ratio and would absolve anything.
		drift = 1
		fmt.Printf("gate: %d shared benchmark(s) — too few to estimate drift; ratios below are raw\n", compared)
	} else {
		fmt.Printf("gate: machine drift %.2fx (geomean ratio over %d shared benchmarks; ratios below are drift-corrected)\n",
			drift, compared)
	}

	var regressions int
	for _, name := range names {
		b, ok := baseNs[name]
		if !ok || b <= 0 {
			continue
		}
		ratio := candNs[name] / b / drift
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-60s %12.0f -> %12.0f ns/op  (%.2fx) %s\n",
			name, b, candNs[name], ratio, verdict)
	}
	if unmatched > 0 {
		fmt.Printf("gate: %d candidate benchmark(s) not in the baseline (new or renamed; not gated)\n", unmatched)
	}
	if regressions > 0 {
		return fmt.Errorf("%d of %d benchmark(s) regressed beyond %.2fx", regressions, compared, threshold)
	}
	fmt.Printf("gate: PASS — %d benchmark(s) within %.2fx of baseline\n", compared, threshold)
	return nil
}
