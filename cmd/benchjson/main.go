// Command benchjson converts `go test -bench` output into a JSON
// benchmark-trajectory artifact, so perf PRs can check in before/after
// evidence (BENCH_PR4.json) and CI can diff runs mechanically instead of
// eyeballing ns/op columns.
//
//	go test -run xxx -bench . -benchmem . | benchjson -label after -out BENCH_PR4.json
//
// Each invocation parses one benchmark run from stdin and appends it to
// the trajectory in -out (created when missing, atomically rewritten
// otherwise). Every `BenchmarkX  N  v1 unit1  v2 unit2 ...` line becomes
// {"name": "X", "iterations": N, "metrics": {unit1: v1, ...}}, which
// captures ns/op, B/op, allocs/op and all custom b.ReportMetric units
// (dist-queries, speedup-vs-serial, ...) uniformly.
//
// With -gate, the run on stdin is instead compared against the newest
// run in -baseline and the exit status reports whether any shared
// benchmark slowed down beyond -threshold (see gate.go; wired up as
// `make bench-gate`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Metrics maps a unit ("ns/op", "allocs/op", "dist-queries", ...) to its
// per-iteration value.
type Metrics map[string]float64

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	Metrics    Metrics `json:"metrics"`
}

// Run is one `go test -bench` invocation.
type Run struct {
	Label      string      `json:"label"`
	Commit     string      `json:"commit,omitempty"`
	GoVersion  string      `json:"go,omitempty"`
	Benchtime  string      `json:"benchtime,omitempty"`
	UnixTime   int64       `json:"unix_time"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Trajectory is the artifact: an append-only sequence of runs.
type Trajectory struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

// trajectorySchema versions the artifact layout.
const trajectorySchema = "urpsm-bench-trajectory/1"

func main() {
	var (
		label     = flag.String("label", "", "label for this run (e.g. pre-PR4, post-PR4; required unless -gate)")
		out       = flag.String("out", "", "trajectory file to append to (default: print the run to stdout)")
		benchtime = flag.String("benchtime", "", "benchtime the run used, recorded verbatim")
		commit    = flag.String("commit", "", "commit id to record (default: git rev-parse --short HEAD)")
		gate      = flag.Bool("gate", false, "gate mode: compare the run on stdin against -baseline instead of recording it")
		baseline  = flag.String("baseline", "", "gate mode: trajectory file whose newest run is the baseline")
		threshold = flag.Float64("threshold", 1.25, "gate mode: fail when candidate ns/op exceeds baseline by this ratio")
	)
	flag.Parse()
	var err error
	if *gate {
		err = runGate(os.Stdin, *baseline, *threshold)
	} else {
		err = run(os.Stdin, *label, *out, *benchtime, *commit)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, label, out, benchtime, commit string) error {
	if label == "" {
		return fmt.Errorf("-label is required")
	}
	r, err := parseRun(in)
	if err != nil {
		return err
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	r.Label = label
	r.Benchtime = benchtime
	r.UnixTime = time.Now().Unix()
	if commit == "" {
		commit = gitCommit()
	}
	r.Commit = commit

	if out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	}
	tr, err := loadTrajectory(out)
	if err != nil {
		return err
	}
	tr.Runs = append(tr.Runs, r)
	return writeTrajectory(out, tr)
}

// parseRun scans `go test -bench` output: header lines carry the
// environment, Benchmark lines carry results.
func parseRun(in io.Reader) (Run, error) {
	var r Run
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				r.Benchmarks = append(r.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return r, err
	}
	r.GoVersion = goVersion()
	return r, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-8   100   5285027 ns/op   2450 dist-queries   16602560 B/op
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: Metrics{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

func loadTrajectory(path string) (Trajectory, error) {
	tr := Trajectory{Schema: trajectorySchema}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return tr, nil
	}
	if err != nil {
		return tr, err
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return tr, fmt.Errorf("%s is not a benchmark trajectory: %w", path, err)
	}
	if tr.Schema != trajectorySchema {
		return tr, fmt.Errorf("%s has schema %q, want %q", path, tr.Schema, trajectorySchema)
	}
	return tr, nil
}

// writeTrajectory persists atomically (temp + rename) so an interrupted
// run cannot corrupt the artifact.
func writeTrajectory(path string, tr Trajectory) error {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func goVersion() string {
	out, err := exec.Command("go", "env", "GOVERSION").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
