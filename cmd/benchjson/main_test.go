package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInsertionScaling/linearDP/n=8         	     100	       320.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkPruningAblation/pruneGreedyDP         	     100	   5285027 ns/op	      2450 dist-queries	16602560 B/op	   21673 allocs/op
BenchmarkParallelPlanning/pool2                	     100	     25225 ns/op	         1.060 speedup-vs-serial	   46433 B/op	    1059 allocs/op
PASS
ok  	repro	6.035s
`

func TestParseRun(t *testing.T) {
	r, err := parseRun(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(r.Benchmarks))
	}
	if r.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", r.CPU)
	}
	b := r.Benchmarks[1]
	if b.Name != "BenchmarkPruningAblation/pruneGreedyDP" || b.Iterations != 100 {
		t.Fatalf("unexpected benchmark %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 5285027, "dist-queries": 2450, "B/op": 16602560, "allocs/op": 21673,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %s = %v, want %v", unit, got, want)
		}
	}
	if got := r.Benchmarks[2].Metrics["speedup-vs-serial"]; got != 1.060 {
		t.Errorf("custom metric = %v, want 1.060", got)
	}
	if got := r.Benchmarks[0].Metrics["ns/op"]; got != 320.7 {
		t.Errorf("fractional ns/op = %v, want 320.7", got)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX", "BenchmarkX notanint 12 ns/op", "Benchmark 1",
		"BenchmarkX 10 nounit", "BenchmarkX 10 abc ns/op",
	} {
		if b, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as %+v, want rejection", line, b)
		}
	}
}

func TestTrajectoryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	for _, label := range []string{"before", "after"} {
		if err := run(strings.NewReader(sampleOutput), label, path, "100x", "abc1234"); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Schema != trajectorySchema {
		t.Errorf("schema = %q", tr.Schema)
	}
	if len(tr.Runs) != 2 || tr.Runs[0].Label != "before" || tr.Runs[1].Label != "after" {
		t.Fatalf("runs = %+v", tr.Runs)
	}
	if tr.Runs[0].Commit != "abc1234" || tr.Runs[0].Benchtime != "100x" {
		t.Errorf("run metadata = %+v", tr.Runs[0])
	}
}

func TestTrajectoryRejectsForeignJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"schema":"something-else","runs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(sampleOutput), "x", path, "", "c"); err == nil {
		t.Fatal("appending to a foreign-schema file must fail")
	}
}

func TestRunRequiresBenchLines(t *testing.T) {
	if err := run(strings.NewReader("PASS\nok repro 1s\n"), "x", "", "", "c"); err == nil {
		t.Fatal("empty bench output must fail")
	}
}
