// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation as Go benchmarks (one per table/figure, plus
// the complexity and pruning ablations). Run everything with
//
//	go test -bench=. -benchmem
//
// Figure benchmarks execute a full scaled-down sweep per iteration and
// additionally report the headline comparison (unified-cost ratio and
// speedup of pruneGreedyDP over the baselines) via b.ReportMetric.
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/expt"
	"repro/internal/roadnet"
	"repro/internal/serve"
	"repro/internal/shortest"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workload"
)

// benchScale keeps the figure sweeps laptop-sized; the cmd/urpsm-bench
// tool exposes the same sweeps at arbitrary scales.
const benchScale = 0.015

var (
	runnerOnce sync.Once
	runnerCh   *expt.Runner
	runnerNYC  *expt.Runner
)

// benchRunners lazily builds one runner per dataset, shared by all figure
// benchmarks (network generation and hub labeling dominate setup cost).
func benchRunners(b *testing.B) (*expt.Runner, *expt.Runner) {
	b.Helper()
	runnerOnce.Do(func() {
		var err error
		runnerCh, err = expt.NewRunner(workload.ChengduLike(benchScale), 1)
		if err != nil {
			panic(err)
		}
		runnerNYC, err = expt.NewRunner(workload.NYCLike(benchScale), 1)
		if err != nil {
			panic(err)
		}
		runnerCh.KineticMaxNodes = 20000
		runnerNYC.KineticMaxNodes = 20000
	})
	return runnerCh, runnerNYC
}

// reportSeries derives the paper's headline comparisons from a sweep and
// attaches them to the benchmark output.
func reportSeries(b *testing.B, s expt.Series) {
	b.Helper()
	var ucPG, ucWorst, respPG, respSlowest float64
	count := 0
	for _, pt := range s.Points {
		pg, ok := pt.Metrics["pruneGreedyDP"]
		if !ok {
			continue
		}
		count++
		ucPG += pg.UnifiedCost
		respPG += pg.AvgResponseMs
		worst, slow := pg.UnifiedCost, pg.AvgResponseMs
		for algo, m := range pt.Metrics {
			if algo == "pruneGreedyDP" {
				continue
			}
			if m.UnifiedCost > worst {
				worst = m.UnifiedCost
			}
			if m.AvgResponseMs > slow {
				slow = m.AvgResponseMs
			}
		}
		ucWorst += worst
		respSlowest += slow
	}
	if count == 0 || ucPG == 0 || respPG == 0 {
		return
	}
	b.ReportMetric(ucWorst/ucPG, "worstUC/pruneUC")
	b.ReportMetric(respSlowest/respPG, "slowest/prune-resp")
}

func benchFigure(b *testing.B, dataset string, fig func(*expt.Runner, []string) (expt.Series, error)) {
	ch, nyc := benchRunners(b)
	r := ch
	if dataset == "NYC" {
		r = nyc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := fig(r, expt.Algorithms)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, s)
		}
	}
}

// BenchmarkTable4DatasetStats regenerates Table 4 (dataset statistics).
func BenchmarkTable4DatasetStats(b *testing.B) {
	ch, nyc := benchRunners(b)
	for i := 0; i < b.N; i++ {
		for _, r := range []*expt.Runner{ch, nyc} {
			if _, err := r.Table4(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3VaryWorkers regenerates Fig. 3 (vary |W|).
func BenchmarkFig3VaryWorkers(b *testing.B) {
	for _, ds := range []string{"Chengdu", "NYC"} {
		b.Run(ds, func(b *testing.B) {
			benchFigure(b, ds, func(r *expt.Runner, a []string) (expt.Series, error) { return r.Fig3(a) })
		})
	}
}

// BenchmarkFig4VaryCapacity regenerates Fig. 4 (vary K_w).
func BenchmarkFig4VaryCapacity(b *testing.B) {
	for _, ds := range []string{"Chengdu", "NYC"} {
		b.Run(ds, func(b *testing.B) {
			benchFigure(b, ds, func(r *expt.Runner, a []string) (expt.Series, error) { return r.Fig4(a) })
		})
	}
}

// BenchmarkFig5VaryGrid regenerates Fig. 5 (vary grid size g, with index
// memory).
func BenchmarkFig5VaryGrid(b *testing.B) {
	for _, ds := range []string{"Chengdu", "NYC"} {
		b.Run(ds, func(b *testing.B) {
			benchFigure(b, ds, func(r *expt.Runner, a []string) (expt.Series, error) { return r.Fig5(a) })
		})
	}
}

// BenchmarkFig6VaryDeadline regenerates Fig. 6 (vary deadline e_r, with
// saved distance queries).
func BenchmarkFig6VaryDeadline(b *testing.B) {
	for _, ds := range []string{"Chengdu", "NYC"} {
		b.Run(ds, func(b *testing.B) {
			benchFigure(b, ds, func(r *expt.Runner, a []string) (expt.Series, error) { return r.Fig6(a) })
		})
	}
}

// BenchmarkFig7VaryPenalty regenerates Fig. 7 (vary penalty p_r).
func BenchmarkFig7VaryPenalty(b *testing.B) {
	for _, ds := range []string{"Chengdu", "NYC"} {
		b.Run(ds, func(b *testing.B) {
			benchFigure(b, ds, func(r *expt.Runner, a []string) (expt.Series, error) { return r.Fig7(a) })
		})
	}
}

// BenchmarkHardnessAdversary replays the §3.3 lower-bound constructions.
func BenchmarkHardnessAdversary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := expt.Hardness(workload.AdvServedCount, []int{8, 32, 128}, 50)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Served fraction at the largest |V| — should be near zero.
			last := pts[len(pts)-1]
			b.ReportMetric(float64(last.OnlineServed)/float64(last.Trials), "served@|V|=128")
		}
	}
}

// BenchmarkInsertionScaling is the §4 complexity ablation: the three
// operators on growing route lengths with an O(1) oracle, each running on
// a warmed scratch arena exactly as the planners do (0 allocs/op). The
// per-op times in the sub-benchmark names reproduce the cubic/quadric/
// linear separation.
func BenchmarkInsertionScaling(b *testing.B) {
	var sc core.Scratch
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		g, err := roadnet.LineGraph(2*n+10, 1)
		if err != nil {
			b.Fatal(err)
		}
		m := shortest.NewMatrix(g)
		rt, req := scalingRoute(b, m.Dist, n)
		L := m.Dist(req.Origin, req.Dest)
		b.Run(fmt.Sprintf("basic/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc.Basic(rt, 1<<30, req, m.Dist)
			}
		})
		b.Run(fmt.Sprintf("naiveDP/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc.NaiveDP(rt, 1<<30, req, L, m.Dist)
			}
		})
		b.Run(fmt.Sprintf("linearDP/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc.LinearDP(rt, 1<<30, req, L, m.Dist)
			}
		})
	}
}

func scalingRoute(b *testing.B, dist core.DistFunc, n int) (*core.Route, *core.Request) {
	b.Helper()
	rt := &core.Route{Loc: 0, Now: 0}
	for i := 0; i < n/2; i++ {
		v := roadnet.VertexID(2*i + 2)
		rt.Stops = append(rt.Stops,
			core.Stop{Vertex: v, Kind: core.Pickup, Req: core.RequestID(i), Cap: 1, DDL: 1e15},
			core.Stop{Vertex: v + 1, Kind: core.Dropoff, Req: core.RequestID(i), Cap: 1, DDL: 1e15},
		)
	}
	rt.Recompute(dist)
	req := &core.Request{ID: 1 << 20, Origin: 1, Dest: roadnet.VertexID(2*(n/2) + 3), Deadline: 1e15, Capacity: 1}
	return rt, req
}

// BenchmarkPruningAblation quantifies Lemma 8: distance queries and wall
// time of pruneGreedyDP vs GreedyDP on identical workloads.
func BenchmarkPruningAblation(b *testing.B) {
	ch, _ := benchRunners(b)
	for _, algo := range []string{"pruneGreedyDP", "GreedyDP"} {
		b.Run(algo, func(b *testing.B) {
			var queries uint64
			for i := 0; i < b.N; i++ {
				m, err := ch.RunOne(ch.Base, algo)
				if err != nil {
					b.Fatal(err)
				}
				queries = m.DistQueries
			}
			b.ReportMetric(float64(queries), "dist-queries")
		})
	}
}

// BenchmarkOperatorInPlannerAblation runs the full pruneGreedy solution
// with each of the three insertion operators: quality is identical (the
// operators find the same optimum), so the wall-clock difference isolates
// the §4 contribution inside the complete system.
func BenchmarkOperatorInPlannerAblation(b *testing.B) {
	ch, _ := benchRunners(b)
	for _, algo := range []string{"pruneGreedyBasic", "pruneGreedyNaive", "pruneGreedyDP"} {
		b.Run(algo, func(b *testing.B) {
			var served int
			for i := 0; i < b.N; i++ {
				m, err := ch.RunOne(ch.Base, algo)
				if err != nil {
					b.Fatal(err)
				}
				served = m.Served
			}
			b.ReportMetric(float64(served), "served")
		})
	}
}

// BenchmarkOracleAblation swaps the distance oracle underneath the whole
// pipeline: hub labels vs contraction hierarchies vs plain bidirectional
// Dijkstra. Outcomes are identical (all exact); only the per-query cost
// differs, which dominates total planning time exactly as the paper's
// "shortest distance queries are the basic operation" framing predicts.
func BenchmarkOracleAblation(b *testing.B) {
	ch, _ := benchRunners(b)
	defer func() { ch.OracleKind = "" }()
	for _, kind := range []string{"hub", "ch", "bidijkstra"} {
		b.Run(kind, func(b *testing.B) {
			ch.OracleKind = kind
			for i := 0; i < b.N; i++ {
				if _, err := ch.RunOne(ch.Base, "pruneGreedyDP"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// parallelBenchState freezes a mid-simulation fleet for the serial-vs-
// parallel planning benchmark: a figure-scale Chengdu workload whose
// first 60% of requests were planned and driven, leaving loaded routes,
// plus a probe set of still-unplanned requests.
type parallelBenchState struct {
	fleet *core.Fleet
	probe []*core.Request
}

var (
	parallelOnce  sync.Once
	parallelState *parallelBenchState
)

func parallelBench(b *testing.B) *parallelBenchState {
	b.Helper()
	parallelOnce.Do(func() {
		// A larger fleet than benchScale: fan-out pays off only when each
		// request has a meaningful candidate set. The full Chengdu fleet
		// (600 workers) on a quarter-scale network keeps candidate sets in
		// the hundreds while the setup stays laptop-sized.
		p := workload.ChengduLike(0.25)
		p.NumWorkers = 600
		p.NumRequests = 2500
		g, err := roadnet.Generate(p.Net)
		if err != nil {
			panic(err)
		}
		hub := shortest.BuildHubLabels(g)
		// The concurrency-safe chain serves both serial and parallel
		// planners so the comparison isolates dispatch, not caching.
		dist := shortest.NewShardedCached(hub, 1<<18, 64).Dist
		inst, err := workload.BuildOn(p, g, dist)
		if err != nil {
			panic(err)
		}
		fleet, err := core.NewFleet(g, dist, inst.Workers, 2000)
		if err != nil {
			panic(err)
		}
		eng := sim.NewEngine(fleet, core.NewPruneGreedyDP(fleet, 1), shortest.NewBiDijkstra(g), 1)
		cut := len(inst.Requests) * 3 / 5
		if _, err := eng.Run(inst.Requests[:cut]); err != nil {
			panic(err)
		}
		probe := inst.Requests[cut:]
		if len(probe) > 256 {
			probe = probe[:256]
		}
		parallelState = &parallelBenchState{fleet: fleet, probe: probe}
	})
	return parallelState
}

// BenchmarkParallelPlanning measures planning throughput of the parallel
// dispatcher against the serial planner on identical frozen fleet state.
// Plan never mutates routes, so every iteration sees the same state and
// sub-benchmarks are directly comparable; the speedup-vs-serial metric on
// the pooled runs is the dispatch subsystem's headline number (≈1x on a
// single-core machine — the dispatcher needs real cores to pay off).
func BenchmarkParallelPlanning(b *testing.B) {
	st := parallelBench(b)
	serial := core.NewPruneGreedyDP(st.fleet, 1)
	serialNsPerOp := 0.0
	for _, pool := range []int{1, 2, 4, 8} {
		pool := pool
		b.Run(fmt.Sprintf("pool%d", pool), func(b *testing.B) {
			var planner interface {
				Plan(now float64, req *core.Request) (*core.Worker, core.Insertion, float64)
			} = serial
			if pool > 1 {
				par := dispatch.NewParallelPruneGreedyDP(st.fleet, 1, pool)
				// Spot-check determinism before timing.
				for _, r := range st.probe[:4] {
					ws, is, _ := serial.Plan(r.Release, r)
					wp, ip, _ := par.Plan(r.Release, r)
					if (ws == nil) != (wp == nil) || (ws != nil && (ws.ID != wp.ID || is.Delta != ip.Delta)) {
						b.Fatalf("pool %d diverged from serial on request %d", pool, r.ID)
					}
				}
				planner = par
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := st.probe[i%len(st.probe)]
				planner.Plan(r.Release, r)
			}
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if pool == 1 {
				serialNsPerOp = nsPerOp
			} else if serialNsPerOp > 0 && nsPerOp > 0 {
				b.ReportMetric(serialNsPerOp/nsPerOp, "speedup-vs-serial")
			}
		})
	}
}

// BenchmarkPlanWithObserver measures the flight recorder's overhead on
// the steady-state plan path: the same frozen fleet state planned with
// no observer versus with a trace.Recorder (plan-latency histogram
// attached) receiving every plan. The delta is the observability tax —
// per the Polynesia lesson it must stay within noise, and the observed
// path stays 0 allocs/op (TestGreedyPlanZeroAllocs and
// TestRecorderPlanZeroAllocs pin that; ReportAllocs shows it here).
func BenchmarkPlanWithObserver(b *testing.B) {
	st := parallelBench(b)
	for _, traced := range []bool{false, true} {
		name := "observer=off"
		if traced {
			name = "observer=on"
		}
		b.Run(name, func(b *testing.B) {
			planner := core.NewPruneGreedyDP(st.fleet, 1)
			if traced {
				rec := trace.New(4096)
				rec.PlanSeconds = trace.NewHistogram(trace.LatencyBuckets())
				planner.SetObserver(rec)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := st.probe[i%len(st.probe)]
				planner.Plan(r.Release, r)
			}
		})
	}
}

// BenchmarkDecisionLowerBound measures the zero-query Lemma 7 bound in
// isolation: it must stay linear in route length and allocation-light.
// BenchmarkDistUnderRebuild measures point-to-point query latency through
// the epoch-aware oracle front in its steady states — tier=hub and
// tier=cch (a preprocessed tier answers) versus tier=live-during-rebuild
// (an epoch just advanced and the live bidirectional-Dijkstra tier
// answers while the preprocessed tier rebuilds asynchronously) — plus the
// cost of the epoch advance itself: advance=rebuild-ch pays a full
// witness-search contraction per epoch, advance=customize-cch re-derives
// shortcut weights over the fixed CCH skeleton. The rebuild/customize gap
// is what the CCH tier buys (DESIGN.md §12): it bounds how long the
// serve layer's urpsm_oracle_rebuild_seconds gauge stays nonzero and how
// long queries pay live-tier latency after a traffic update.
func BenchmarkDistUnderRebuild(b *testing.B) {
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 40, Cols: 40, Spacing: 150, Jitter: 0.2, ArterialEvery: 5,
		MotorwayRing: true, DetourMin: 1.05, DetourMax: 1.3, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	budget := shortest.AutoBudget{MaxHubVertices: g.NumVertices(), MaxCHVertices: g.NumVertices()}
	n := g.NumVertices()
	pairs := make([][2]roadnet.VertexID, 256)
	for i := range pairs {
		pairs[i] = [2]roadnet.VertexID{roadnet.VertexID(i * 7 % n), roadnet.VertexID(i * 13 % n)}
	}

	b.Run("tier=hub", func(b *testing.B) {
		v := shortest.NewVersioned(g, budget, true)
		v.WaitRebuild()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			v.Dist(p[0], p[1])
		}
	})
	b.Run("tier=cch", func(b *testing.B) {
		cchBudget := shortest.AutoBudget{MaxCCHVertices: n, MaxCHVertices: n}
		v := shortest.NewVersioned(g, cchBudget, true)
		v.WaitRebuild()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			v.Dist(p[0], p[1])
		}
	})
	b.Run("tier=live-during-rebuild", func(b *testing.B) {
		// Advance to a fresh epoch per outer iteration batch and query
		// before the rebuild completes; WaitRebuild is never called inside
		// the timed region, so the hub tier practically never answers.
		overlay := roadnet.NewOverlay(g)
		v := shortest.NewVersioned(g, budget, true)
		v.WaitRebuild()
		cur, epoch, _, err := overlay.Apply([]roadnet.TrafficUpdate{{Factor: 1.5}})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%4096 == 0 {
				b.StopTimer()
				v.WaitRebuild() // don't stack rebuild goroutines
				v.Advance(cur, epoch)
				b.StartTimer()
			}
			p := pairs[i%len(pairs)]
			v.Dist(p[0], p[1])
		}
		b.StopTimer()
		v.WaitRebuild()
	})
	// The advance=* pair is the PR 6 acceptance comparison: one epoch
	// advance on the classic CH tier (full witness-search contraction)
	// versus the CCH customize fast path over the shared skeleton. Both
	// run synchronously so the measured op IS the preprocessing cost.
	b.Run("advance=rebuild-ch", func(b *testing.B) {
		chBudget := shortest.AutoBudget{MaxCHVertices: n}
		overlay := roadnet.NewOverlay(g)
		v := shortest.NewVersioned(g, chBudget, false)
		cur, epoch, _, err := overlay.Apply([]roadnet.TrafficUpdate{{Factor: 1.5}})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Advance(cur, epoch)
		}
	})
	b.Run("advance=customize-cch", func(b *testing.B) {
		cchBudget := shortest.AutoBudget{MaxCCHVertices: n, MaxCHVertices: n}
		overlay := roadnet.NewOverlay(g)
		v := shortest.NewVersioned(g, cchBudget, false)
		cur, epoch, _, err := overlay.Apply([]roadnet.TrafficUpdate{{Factor: 1.5}})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Advance(cur, epoch)
		}
		b.StopTimer()
		if v.Customizations() == 0 {
			b.Fatal("customize fast path not taken")
		}
	})
}

func BenchmarkDecisionLowerBound(b *testing.B) {
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 20, Cols: 20, Spacing: 150, Jitter: 0.2, ArterialEvery: 5,
		MotorwayRing: true, DetourMin: 1.05, DetourMax: 1.3, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := shortest.NewMatrix(g)
	rt, req := scalingRoute(b, m.Dist, 16)
	// Re-home the synthetic route onto this graph's vertex range.
	for i := range rt.Stops {
		rt.Stops[i].Vertex = roadnet.VertexID(i % g.NumVertices())
	}
	rt.Recompute(m.Dist)
	req.Origin, req.Dest = 5, roadnet.VertexID(g.NumVertices()-1)
	L := m.Dist(req.Origin, req.Dest)
	var sc core.Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.LowerBound(rt, 1<<30, req, g, L)
	}
}

// BenchmarkWALCommit measures the durability cost of the serve layer's
// group commit (DESIGN.md §13.2): one admission batch = one commit
// group = one fsync. Each iteration appends a full commit group (batch
// header + group-size admission/decision pairs) and syncs it, so
// records-per-fsync shows what batching buys: group=1 pays a whole
// fsync per decision, group=64 amortizes it 64-fold. The fsync-per-op
// figure is the real disk latency of the test machine — expect
// milliseconds, not the nanoseconds of the in-memory append path.
func BenchmarkWALCommit(b *testing.B) {
	for _, group := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("group=%d", group), func(b *testing.B) {
			l, err := wal.Create(b.TempDir()+"/wal.log", 1)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			adm := wal.Admission{ID: 1, Origin: 7, Dest: 9, Release: 100,
				Deadline: 700, Penalty: 320.5, Capacity: 2}
			dec := wal.Decision{ID: 1, Accepted: true, Worker: 3,
				Delta: 142.75, SimTime: 100}
			var admBuf, decBuf, batchBuf []byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batchBuf = wal.AppendBatch(batchBuf[:0], group, 0)
				l.Append(wal.TypeBatch, batchBuf)
				for j := 0; j < group; j++ {
					admBuf = wal.AppendAdmission(admBuf[:0], adm)
					l.Append(wal.TypeAdmission, admBuf)
					decBuf = wal.AppendDecision(decBuf[:0], dec)
					l.Append(wal.TypeDecision, decBuf)
				}
				if err := l.Sync(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			elapsed := b.Elapsed()
			if b.N > 0 {
				b.ReportMetric(float64(2*group), "records/fsync")
				b.ReportMetric(elapsed.Seconds()/float64(b.N*group)*1e9, "ns/decision")
			}
		})
	}
}

// BenchmarkSaturation drives the online dispatch service open-loop over
// HTTP at fixed offered loads with a bounded admission queue — the
// in-process twin of `urpsm-replay -rate` (DESIGN.md §15.4). Each
// iteration fires one request at its scheduled arrival instant without
// waiting for completions, so at rates past the service capacity the
// queue fills and deterministic shedding kicks in. Reported per rate:
// goodput-rps (decided work per wall second), shed-rate (429 fraction of
// offered) and p99-ms client-observed latency — the numbers whose curve
// locates the throughput knee.
func BenchmarkSaturation(b *testing.B) {
	p := workload.ChengduLike(0.01)
	g, err := roadnet.Generate(p.Net)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := workload.BuildOn(p, g, shortest.NewBiDijkstra(g).Dist)
	if err != nil {
		b.Fatal(err)
	}
	oracle := shortest.BuildHubLabels(g)

	for _, rate := range []float64{500, 2000, 8000} {
		b.Run(fmt.Sprintf("rate=%v", rate), func(b *testing.B) {
			srv, err := serve.NewServer(serve.Config{
				Graph: g, Workers: inst.Workers, Oracle: oracle, OracleKind: "hub",
				BatchWindow: 2 * time.Millisecond, BatchSize: 16, MaxQueue: 32,
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer func() {
				ts.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = srv.Shutdown(ctx)
			}()
			client := ts.Client()

			var decided, shed, failed atomic.Int64
			var mu sync.Mutex
			var lat []float64
			var wg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				due := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				r := inst.Requests[i%len(inst.Requests)]
				body, _ := json.Marshal(serve.Request{
					Origin: int64(r.Origin), Dest: int64(r.Dest),
					Deadline: 1e9, Penalty: r.Penalty, Capacity: r.Capacity,
				})
				wg.Add(1)
				go func(body []byte) {
					defer wg.Done()
					t0 := time.Now()
					resp, err := client.Post(ts.URL+"/v1/requests", "application/json", bytes.NewReader(body))
					if err != nil {
						failed.Add(1)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						decided.Add(1)
						ms := float64(time.Since(t0).Nanoseconds()) / 1e6
						mu.Lock()
						lat = append(lat, ms)
						mu.Unlock()
					case http.StatusTooManyRequests:
						shed.Add(1)
					default:
						failed.Add(1)
					}
				}(body)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if failed.Load() > 0 {
				b.Fatalf("%d requests failed", failed.Load())
			}
			b.ReportMetric(float64(decided.Load())/elapsed.Seconds(), "goodput-rps")
			b.ReportMetric(float64(shed.Load())/float64(b.N), "shed-rate")
			b.ReportMetric(sim.Percentile(lat, 0.99), "p99-ms")
		})
	}
}

// --- Batched many-to-many distance oracle (DESIGN.md §16) ---

// mtmGen is the probe-validated grid family for the many-to-many scale
// ladder: dim 40 ≈ 1.6k vertices, dim 100 ≈ 10k, dim 320 ≈ 102k.
func mtmGen(dim int) roadnet.GenConfig {
	return roadnet.GenConfig{
		Rows: dim, Cols: dim, Spacing: 150, Jitter: 0.2, ArterialEvery: 5,
		MotorwayRing: true, RemoveFrac: 0.08, DetourMin: 1.05, DetourMax: 1.3,
		Seed: 3,
	}
}

var (
	mtmMu     sync.Mutex
	mtmGraphs = map[int]*roadnet.Graph{}
	mtmTiers  = map[string]shortest.Oracle{}
)

// mtmGraph returns the cached benchmark graph for one grid dimension.
func mtmGraph(b *testing.B, dim int) *roadnet.Graph {
	b.Helper()
	mtmMu.Lock()
	defer mtmMu.Unlock()
	g, ok := mtmGraphs[dim]
	if !ok {
		var err error
		g, err = roadnet.Generate(mtmGen(dim))
		if err != nil {
			b.Fatal(err)
		}
		mtmGraphs[dim] = g
	}
	return g
}

// mtmTier returns the cached preprocessed tier for (dim, kind); the
// 102k-vertex CCH build takes ~2 minutes, paid once per process.
func mtmTier(b *testing.B, dim int, kind string) shortest.Oracle {
	b.Helper()
	g := mtmGraph(b, dim)
	mtmMu.Lock()
	defer mtmMu.Unlock()
	key := fmt.Sprintf("%d/%s", dim, kind)
	o, ok := mtmTiers[key]
	if !ok {
		switch kind {
		case "hub":
			o = shortest.BuildHubLabels(g)
		case "ch":
			o = shortest.BuildCH(g)
		case "cch":
			o = shortest.BuildCCH(g)
		default:
			b.Fatalf("unknown tier %q", kind)
		}
		mtmTiers[key] = o
	}
	return o
}

// mtmBatch draws a deterministic 32×32 batch of endpoints spread over the
// graph — the size of a busy admission batch's distance table.
func mtmBatch(g *roadnet.Graph) (sources, targets []roadnet.VertexID) {
	n := g.NumVertices()
	const k = 32
	for i := 0; i < k; i++ {
		sources = append(sources, roadnet.VertexID((i*2654435761+17)%n))
		targets = append(targets, roadnet.VertexID((i*40503+977)%n))
	}
	return sources, targets
}

// BenchmarkManyToMany compares one batched table fill against the
// equivalent 32×32 = 1024 point queries on every tier of the scale
// ladder. The bucket sweep (CH/CCH) and the hub batch merge produce
// bit-identical cells to the point queries they replace
// (TestManyToManyMatchesPointDist), so ns/op is the only delta. The
// 102k-vertex CCH rungs run when URPSM_BENCH_XL=1 (scripts/bench-json.sh
// sets it; the ~2-minute build keeps it out of quick runs).
func BenchmarkManyToMany(b *testing.B) {
	cases := []struct {
		label string
		dim   int
		kind  string
	}{
		{"1.6k", 40, "hub"},
		{"1.6k", 40, "ch"},
		{"1.6k", 40, "cch"},
		{"10k", 100, "cch"},
	}
	if os.Getenv("URPSM_BENCH_XL") == "1" {
		cases = append(cases, struct {
			label string
			dim   int
			kind  string
		}{"102k", 320, "cch"})
	}
	for _, c := range cases {
		g := mtmGraph(b, c.dim)
		tier := mtmTier(b, c.dim, c.kind)
		mtm := shortest.ManyToManyFor(tier)
		if mtm == nil {
			b.Fatalf("no batched form for %s", c.kind)
		}
		sources, targets := mtmBatch(g)
		b.Run(fmt.Sprintf("%s/%s/point", c.label, c.kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, s := range sources {
					for _, t := range targets {
						tier.Dist(s, t)
					}
				}
			}
			b.ReportMetric(float64(len(sources)*len(targets)), "cells/op")
		})
		b.Run(fmt.Sprintf("%s/%s/table", c.label, c.kind), func(b *testing.B) {
			arena := shortest.NewTableArena()
			for i := 0; i < b.N; i++ {
				mtm.Table(arena, sources, targets)
			}
			b.ReportMetric(float64(len(sources)*len(targets)), "cells/op")
		})
	}
	// The unpreprocessed fallback, small scale only: one full Dijkstra per
	// source vs 1024 early-stopping point runs.
	g := mtmGraph(b, 40)
	sources, targets := mtmBatch(g)
	point := shortest.NewDijkstra(g)
	b.Run("1.6k/dijkstra/point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range sources {
				for _, t := range targets {
					point.Dist(s, t)
				}
			}
		}
	})
	b.Run("1.6k/dijkstra/table", func(b *testing.B) {
		mtm := shortest.NewDijkstraMtM(g)
		arena := shortest.NewTableArena()
		for i := 0; i < b.N; i++ {
			mtm.Table(arena, sources, targets)
		}
	})
}

// batchPlanState freezes a mid-simulation snapshot for the
// point-vs-table batch-planning benchmark: the fleet after the engine
// has worked the first 60% of the stream, plus the remaining requests
// chunked into 32-request admission batches. Each benchmark iteration
// restores the snapshot and replans the whole remainder with committing
// decisions and a cold LRU cache — a live server's regime, where every
// batch brings fresh endpoints and routes evolve between batches.
// (Replaying one frozen batch with Plan against an ever-warm cache
// would let the LRU absorb every point query and measure nothing.)
type batchPlanState struct {
	g       *roadnet.Graph
	hub     *shortest.HubLabels
	saved   []*core.Worker
	batches [][]*core.Request
}

var (
	batchPlanOnce  sync.Once
	batchPlanFixed *batchPlanState
)

// cloneFleetWorkers deep-copies the snapshot so one iteration's
// committed insertions never leak into the next.
func cloneFleetWorkers(ws []*core.Worker) []*core.Worker {
	out := make([]*core.Worker, len(ws))
	for i, w := range ws {
		c := *w
		c.Route.Stops = append([]core.Stop(nil), w.Route.Stops...)
		c.Route.Arr = append([]float64(nil), w.Route.Arr...)
		out[i] = &c
	}
	return out
}

func batchPlanBench(b *testing.B) *batchPlanState {
	b.Helper()
	batchPlanOnce.Do(func() {
		p := workload.ChengduLike(0.25)
		p.NumWorkers = 600
		p.NumRequests = 2500
		g, err := roadnet.Generate(p.Net)
		if err != nil {
			panic(err)
		}
		hub := shortest.BuildHubLabels(g)
		inst, err := workload.BuildOn(p, g, hub.Dist)
		if err != nil {
			panic(err)
		}
		fleet, err := core.NewFleet(g, hub.Dist, inst.Workers, 2000)
		if err != nil {
			panic(err)
		}
		eng := sim.NewEngine(fleet, core.NewPruneGreedyDP(fleet, 1), shortest.NewBiDijkstra(g), 1)
		cut := len(inst.Requests) * 3 / 5
		if _, err := eng.Run(inst.Requests[:cut]); err != nil {
			panic(err)
		}
		var batches [][]*core.Request
		for lo := cut; lo+32 <= len(inst.Requests); lo += 32 {
			batches = append(batches, inst.Requests[lo:lo+32])
		}
		batchPlanFixed = &batchPlanState{
			g: g, hub: hub,
			saved:   cloneFleetWorkers(inst.Workers),
			batches: batches,
		}
	})
	return batchPlanFixed
}

// BenchmarkBatchPlanning is the tentpole's headline: the tail of a
// Chengdu-like stream planned by pruneGreedyDP in 32-request admission
// batches with point queries vs with one prefetched distance table per
// batch (serve.Server.flush's wiring, DESIGN.md §16). Decisions are
// checked identical across the two modes before timing anything.
// dist-queries/op counts oracle queries that escaped the LRU cache —
// the table mode's collapse of that number is the admission-batch win
// the PR exists for.
func BenchmarkBatchPlanning(b *testing.B) {
	st := batchPlanBench(b)
	mtm := shortest.ManyToManyFor(st.hub)
	if mtm == nil {
		b.Fatal("hub labels lost their batched form")
	}

	// run replans the remaining stream once from the snapshot, committing
	// every decision, and reports the oracle queries (cache misses) and
	// table hits issued along the way.
	run := func(batched bool) ([]core.Result, uint64, uint64) {
		counter := shortest.NewCounting(st.hub)
		dist := shortest.NewCached(counter, 1<<18).Dist
		fleet, err := core.NewFleet(st.g, dist, cloneFleetWorkers(st.saved), 2000)
		if err != nil {
			panic(err)
		}
		planner := core.NewPruneGreedyDP(fleet, 1)
		var (
			table *core.DistTable
			arena *shortest.TableArena
			cands []*core.Worker
		)
		if batched {
			table = core.NewDistTable(st.g.NumVertices(), dist)
			arena = shortest.NewTableArena()
		}
		results := make([]core.Result, 0, 32*len(st.batches))
		for _, batch := range st.batches {
			if batched {
				table.Reset()
				cands = cands[:0]
				for _, r := range batch {
					table.AddRequest(r)
					lb := fleet.TravelTimeLB(r.Origin, r.Dest)
					cands = fleet.CandidatesAppend(cands, r, batch[0].Release, lb)
				}
				for _, w := range cands {
					table.AddWorker(w)
				}
				table.Install(mtm.Table(arena, table.Rows(), table.Cols()))
				fleet.Dist = table.Dist
			}
			for _, r := range batch {
				results = append(results, planner.OnRequest(r.Release, r))
			}
			if batched {
				fleet.Dist = dist
			}
		}
		var hits uint64
		if batched {
			hits, _ = table.Stats()
		}
		return results, counter.Count(), hits
	}

	// Decision identity across the swap, verified before timing anything.
	refRes, _, _ := run(false)
	tabRes, _, _ := run(true)
	for i := range refRes {
		if refRes[i] != tabRes[i] {
			b.Fatalf("table-backed planning diverged at request %d: point %+v table %+v",
				i, refRes[i], tabRes[i])
		}
	}

	b.Run("point", func(b *testing.B) {
		var queries uint64
		for i := 0; i < b.N; i++ {
			_, q, _ := run(false)
			queries += q
		}
		b.ReportMetric(float64(queries)/float64(b.N), "dist-queries/op")
	})
	b.Run("table", func(b *testing.B) {
		var queries, hits uint64
		for i := 0; i < b.N; i++ {
			_, q, h := run(true)
			queries += q
			hits += h
		}
		b.ReportMetric(float64(queries)/float64(b.N), "dist-queries/op")
		b.ReportMetric(float64(hits)/float64(b.N), "table-hits/op")
	})
}

// BenchmarkCCHCustomize measures the metric-customization sweep serially
// and with the level-parallel triangle fan-out
// (TestCustomizeParallelBitExact pins them bit-identical). On a
// single-core host the fan-out is expected to sit at ≈1x — the numbers
// record the partitioning overhead honestly; real cores turn it into a
// speedup.
func BenchmarkCCHCustomize(b *testing.B) {
	g := mtmGraph(b, 100)
	skel := cchSkelBench(b, g)
	costs := g.ArcCosts()
	serialNs := 0.0
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				skel.CustomizeParallel(costs, workers)
			}
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if workers == 1 {
				serialNs = nsPerOp
			} else if serialNs > 0 && nsPerOp > 0 {
				b.ReportMetric(serialNs/nsPerOp, "speedup-vs-serial")
			}
		})
	}
}

var (
	cchSkelOnce  sync.Once
	cchSkelFixed *shortest.CCHSkeleton
)

func cchSkelBench(b *testing.B, g *roadnet.Graph) *shortest.CCHSkeleton {
	b.Helper()
	cchSkelOnce.Do(func() { cchSkelFixed = shortest.BuildCCHSkeleton(g) })
	return cchSkelFixed
}
