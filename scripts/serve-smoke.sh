#!/usr/bin/env bash
# serve-smoke: end-to-end check of the online dispatch service.
#
# Builds the commands, generates a fixture network + workload (1500
# requests), starts urpsm-serve, replays the full workload in -lockstep
# mode (asserting the served decisions are bit-identical to an offline
# sim.Engine run and printing p50/p95/p99 latency), then sends SIGTERM
# and asserts a clean drain + snapshot write.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

PORT=$(( 20000 + RANDOM % 20000 ))
ADDR="127.0.0.1:$PORT"

echo "== build =="
go build -o "$BIN" ./cmd/...

echo "== fixture (chengdu preset, scale 0.1: 1500 requests, 60 workers) =="
"$BIN/netgen" -preset chengdu -scale 0.1 \
    -o "$WORK/city.net" -workload "$WORK/city.load" > /dev/null

echo "== start urpsm-serve on $ADDR =="
"$BIN/urpsm-serve" -net "$WORK/city.net" -load "$WORK/city.load" \
    -oracle auto -addr "$ADDR" -batch-window 2ms \
    -snapshot "$WORK/state.json" > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

echo "== lockstep replay =="
"$BIN/urpsm-replay" -net "$WORK/city.net" -load "$WORK/city.load" \
    -addr "$ADDR" -oracle auto -lockstep

echo "== scrape /metrics =="
if command -v curl > /dev/null; then
    curl -sf "http://$ADDR/metrics" | grep -E '^urpsm_(requests_total|batches_total)' || {
        echo "metrics scrape failed" >&2; exit 1; }
fi

echo "== graceful shutdown =="
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "urpsm-serve exited non-zero; log:" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi
SERVE_PID=""
grep -q "wrote snapshot" "$WORK/serve.log" || {
    echo "no snapshot written; log:" >&2; cat "$WORK/serve.log" >&2; exit 1; }
test -s "$WORK/state.json"

echo "== warm restart from snapshot =="
"$BIN/urpsm-serve" -net "$WORK/city.net" -load "$WORK/city.load" \
    -oracle auto -addr "$ADDR" -snapshot "$WORK/state.json" \
    > "$WORK/serve2.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "urpsm-serve on" "$WORK/serve2.log" && break
    sleep 0.1
done
grep -q "restored snapshot" "$WORK/serve2.log" || {
    echo "warm restart did not restore; log:" >&2; cat "$WORK/serve2.log" >&2; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""

echo "serve-smoke OK"
