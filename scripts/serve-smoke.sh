#!/usr/bin/env bash
# serve-smoke: end-to-end check of the online dispatch service.
#
# Builds the commands, generates a fixture network + workload (1500
# requests), starts urpsm-serve, replays the full workload in -lockstep
# mode (asserting the served decisions are bit-identical to an offline
# sim.Engine run and printing p50/p95/p99 latency), scrapes the
# observability surface (/metrics histograms, /debug/trace, one
# /v1/decisions/{id}/explain, /debug/runtime), then sends SIGTERM
# and asserts a clean drain + snapshot write. A second server then
# replays the same workload with a mid-replay traffic profile injected
# via POST /v1/traffic (-traffic): decisions must stay bit-identical to
# the offline engine replaying the same congestion trace, the epoch must
# show up in /metrics, and no route may be dropped.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

PORT=$(( 20000 + RANDOM % 20000 ))
ADDR="127.0.0.1:$PORT"

echo "== build =="
go build -o "$BIN" ./cmd/...

echo "== fixture (chengdu preset, scale 0.1: 1500 requests, 60 workers) =="
"$BIN/netgen" -preset chengdu -scale 0.1 \
    -o "$WORK/city.net" -workload "$WORK/city.load" > /dev/null

echo "== start urpsm-serve on $ADDR =="
"$BIN/urpsm-serve" -net "$WORK/city.net" -load "$WORK/city.load" \
    -oracle auto -addr "$ADDR" -batch-window 2ms -trace-events 16384 \
    -snapshot "$WORK/state.json" > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

echo "== lockstep replay =="
"$BIN/urpsm-replay" -net "$WORK/city.net" -load "$WORK/city.load" \
    -addr "$ADDR" -oracle auto -lockstep -explain 0 | tail -n 20

echo "== scrape /metrics =="
if command -v curl > /dev/null; then
    curl -sf "http://$ADDR/metrics" | grep -E '^urpsm_(requests_total|batches_total)' || {
        echo "metrics scrape failed" >&2; exit 1; }
    # Scrape once into a file: grep -q exits at the first match, and
    # under pipefail the writer's SIGPIPE would read as a curl failure.
    curl -sf "http://$ADDR/metrics" > "$WORK/metrics.txt"
    grep -q '^urpsm_plan_seconds_count [1-9]' "$WORK/metrics.txt" || {
        echo "plan-latency histogram empty (tracing not wired?)" >&2; exit 1; }
    # The lockstep replay never overloads the (unbounded, -max-queue
    # unset) admission queue: any shed here would mean admission control
    # fired outside the overload contract (DESIGN.md §15).
    grep -q '^urpsm_shed_total 0$' "$WORK/metrics.txt" || {
        echo "urpsm_shed_total nonzero (or missing) after a non-overload lockstep run" >&2; exit 1; }
    grep -q '^urpsm_degrade_state 0$' "$WORK/metrics.txt" || {
        echo "urpsm_degrade_state nonzero (or missing): ladder moved while disarmed" >&2; exit 1; }

    echo "== scrape /debug/trace and one explain =="
    # The trace body is multi-MB; grep a file rather than piping a shell
    # variable (grep -q exits early and pipefail would report the writer's
    # SIGPIPE as a failure).
    curl -sf "http://$ADDR/debug/trace" > "$WORK/trace.json"
    for kind in admit plan_start plan ack flush; do
        grep -q "\"kind\": \"$kind\"" "$WORK/trace.json" || {
            echo "/debug/trace has no $kind event" >&2; exit 1; }
    done
    # Pick a request id out of the retained trace and ask the server to
    # explain its decision.
    REQ=$(awk '/"kind": "plan",/ {found=1}
               found && /"req":/ {gsub(/[^0-9]/, ""); print; exit}' \
               "$WORK/trace.json")
    EXPLAIN=$(curl -sf "http://$ADDR/v1/decisions/$REQ/explain")
    for field in reason candidates top_candidates plan_ns; do
        echo "$EXPLAIN" | grep -q "\"$field\"" || {
            echo "explain for request $REQ missing $field:" >&2
            echo "$EXPLAIN" >&2; exit 1; }
    done
    curl -sf "http://$ADDR/debug/runtime" | grep -q '"goroutines"' || {
        echo "/debug/runtime scrape failed" >&2; exit 1; }
fi

echo "== graceful shutdown =="
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "urpsm-serve exited non-zero; log:" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi
SERVE_PID=""
grep -q "wrote snapshot" "$WORK/serve.log" || {
    echo "no snapshot written; log:" >&2; cat "$WORK/serve.log" >&2; exit 1; }
test -s "$WORK/state.json"

echo "== warm restart from snapshot =="
"$BIN/urpsm-serve" -net "$WORK/city.net" -load "$WORK/city.load" \
    -oracle auto -addr "$ADDR" -snapshot "$WORK/state.json" \
    > "$WORK/serve2.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "urpsm-serve on" "$WORK/serve2.log" && break
    sleep 0.1
done
grep -q "restored snapshot" "$WORK/serve2.log" || {
    echo "warm restart did not restore; log:" >&2; cat "$WORK/serve2.log" >&2; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""

echo "== lockstep replay with mid-replay traffic updates =="
cat > "$WORK/rush.traffic" <<'TRAFFIC'
urpsm-traffic 1
# congestion builds, peaks on motorways, then clears
at 300 scale 1.6
at 900 scale 2.2 class motorway
at 900 scale 1.3
at 1800 clear
TRAFFIC
"$BIN/urpsm-serve" -net "$WORK/city.net" -load "$WORK/city.load" \
    -oracle auto -addr "$ADDR" -batch-window 2ms \
    > "$WORK/serve3.log" 2>&1 &
SERVE_PID=$!
"$BIN/urpsm-replay" -net "$WORK/city.net" -load "$WORK/city.load" \
    -traffic "$WORK/rush.traffic" -addr "$ADDR" -oracle auto -lockstep

if command -v curl > /dev/null; then
    METRICS=$(curl -sf "http://$ADDR/metrics")
    echo "$METRICS" | grep -q '^urpsm_traffic_epoch [1-9]' || {
        echo "traffic epoch did not advance:" >&2
        echo "$METRICS" | grep urpsm_traffic >&2; exit 1; }
    # No dropped routes: every decided request is accounted for and the
    # fleet is intact.
    echo "$METRICS" | grep -E '^urpsm_(traffic_epoch|traffic_updates_total|oracle_rebuilds_total|workers)'
    # One more live update over HTTP; the epoch must bump again.
    BEFORE=$(echo "$METRICS" | awk '/^urpsm_traffic_epoch/ {print $2}')
    curl -sf -X POST "http://$ADDR/v1/traffic" \
        -d '{"updates":[{"factor":1.2,"class":"arterial"}]}' > /dev/null
    AFTER=$(curl -sf "http://$ADDR/metrics" | awk '/^urpsm_traffic_epoch/ {print $2}')
    [ "$AFTER" -gt "$BEFORE" ] || { echo "POST /v1/traffic did not bump epoch ($BEFORE -> $AFTER)" >&2; exit 1; }
fi
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""

echo "serve-smoke OK"
