#!/usr/bin/env bash
# bench-gate.sh — SLO regression gate: rerun the headline benchmarks and
# fail if any benchmark shared with the newest run in the checked-in
# trajectory artifact slowed down by more than 25% ns/op
# (cmd/benchjson -gate).
#
#   scripts/bench-gate.sh                  # gate vs the newest BENCH_PR*.json
#   scripts/bench-gate.sh -t 1x            # quick pass (noisy; CI exercises the plumbing)
#   scripts/bench-gate.sh -f BENCH_PR9.json -r 1.5   # explicit baseline, +50% threshold
#
# The gate compares like with like: when the baseline was recorded on a
# different CPU model the comparison is skipped with a warning (ns/op
# across machines measures the hardware, not the patch), so the gate is
# strict on the box that produced the artifact and advisory elsewhere.
# On the same machine, per-benchmark ratios are divided by the geomean
# ratio across the shared set before the threshold applies: shared-box
# drift slows everything uniformly, a patch regression slows one
# benchmark relative to its peers.
#
# BenchmarkSaturation is excluded: its ns/op is the open-loop pacing
# schedule (1/rate plus drain), not code speed — its regression signal
# lives in the goodput-rps/shed-rate metrics, not in wall time per op.
# BenchmarkBatchPlanning is excluded for the same reason: one op is a
# deliberate full-stream replay whose signal is dist-queries/op, which
# the gate does not compare. The gate also leaves URPSM_BENCH_XL unset,
# so the 102k many-to-many rungs recorded by bench-json are simply not
# shared with the gate run and the gate stays quick.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH='BenchmarkPruningAblation|BenchmarkParallelPlanning|BenchmarkInsertionScaling|BenchmarkOracleAblation|BenchmarkDecisionLowerBound|BenchmarkDistUnderRebuild|BenchmarkWALCommit|BenchmarkPlanWithObserver|BenchmarkManyToMany|BenchmarkCCHCustomize'
BENCHTIME=100x
BASELINE=""
THRESHOLD=1.25
# The whole suite runs COUNT times and the gate takes the per-benchmark
# minimum ns/op: noise (preemption, fsync latency, cache pollution) only
# ever adds time, so the fastest repetition is the honest cost estimate.
# Deliberately NOT `go test -count`: that runs a benchmark's repetitions
# back-to-back within milliseconds, inside the same noise burst — sweeps
# space them a full suite apart so the minimum sees independent weather.
COUNT=3

while getopts "b:t:c:f:r:h" opt; do
  case $opt in
    b) BENCH=$OPTARG ;;
    t) BENCHTIME=$OPTARG ;;
    c) COUNT=$OPTARG ;;
    f) BASELINE=$OPTARG ;;
    r) THRESHOLD=$OPTARG ;;
    h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) exit 2 ;;
  esac
done

if [ -z "$BASELINE" ]; then
  # Newest checked-in trajectory by PR number.
  BASELINE=$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -n 1)
  if [ -z "$BASELINE" ]; then
    echo "bench-gate: no BENCH_PR*.json baseline found" >&2
    exit 1
  fi
fi

echo "bench-gate: running '$BENCH' at -benchtime $BENCHTIME, $COUNT sweep(s), against $BASELINE ..." >&2
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
for _ in $(seq "$COUNT"); do
  go test -run xxx -bench "$BENCH" -benchtime "$BENCHTIME" . >> "$RAW"
done
go run ./cmd/benchjson -gate -baseline "$BASELINE" -threshold "$THRESHOLD" < "$RAW"
