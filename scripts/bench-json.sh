#!/usr/bin/env bash
# bench-json.sh — run the headline benchmarks and append one labeled run
# to a JSON benchmark-trajectory artifact (see cmd/benchjson).
#
#   scripts/bench-json.sh                         # 100x run -> BENCH_PR10.json, label = short commit
#   scripts/bench-json.sh -t 1x -o /tmp/b.json    # CI smoke: one iteration per benchmark
#   scripts/bench-json.sh -l post-PR4             # explicit label
#   scripts/bench-json.sh -b 'BenchmarkPruningAblation'  # subset
#
# The headline set covers the perf surfaces this repo tracks: the Lemma 8
# pruning ablation (dist-queries), parallel planning throughput
# (speedup-vs-serial), the §4 insertion-operator scaling, the oracle
# ablation, the decision-phase lower bound, the epoch-aware oracle
# front under traffic (query latency per tier plus the epoch-advance cost
# of a full CH rebuild versus a CCH customization), the WAL group
# commit (fsync amortization across admission-batch sizes), the
# flight-recorder observability tax (plan path with observer on vs off —
# must stay within noise at 0 allocs/op), the open-loop saturation
# sweep (goodput/shed-rate/p99 at offered loads straddling the service's
# throughput knee, under a bounded admission queue — DESIGN.md §15),
# the batched many-to-many distance oracle across the scale ladder
# (one table fill vs 1024 point queries per tier, DESIGN.md §16) and
# the level-parallel CCH customization sweep.
# -benchmem is always on so allocs/op regressions are recorded in the
# artifact.
#
# BenchmarkBatchPlanning replays the tail of a Chengdu-like stream per
# iteration (~seconds/op by design), so it runs in a separate heavy pass
# at HEAVYTIME iterations rather than the headline BENCHTIME.
set -euo pipefail
cd "$(dirname "$0")/.."

# The 102k-vertex many-to-many rungs (a ~2-minute CCH build, paid once
# per go-test process) only run when this is exported.
export URPSM_BENCH_XL=1

BENCH='BenchmarkPruningAblation|BenchmarkParallelPlanning|BenchmarkInsertionScaling|BenchmarkOracleAblation|BenchmarkDecisionLowerBound|BenchmarkDistUnderRebuild|BenchmarkWALCommit|BenchmarkPlanWithObserver|BenchmarkSaturation|BenchmarkManyToMany|BenchmarkCCHCustomize'
HEAVY='BenchmarkBatchPlanning'
HEAVYTIME=3x
BENCHTIME=100x
OUT=BENCH_PR10.json
LABEL=""
# Repetitions are recorded verbatim in the artifact; the bench gate takes
# the per-benchmark minimum, so a -c 3 baseline is judged by the same
# min-of-N discipline as the candidate run it will later gate. Sweeps,
# not `go test -count`: count repeats a benchmark back-to-back inside
# the same noise burst; sweeps space repetitions a full suite apart.
COUNT=3

while getopts "b:t:o:l:c:h" opt; do
  case $opt in
    b) BENCH=$OPTARG ;;
    t) BENCHTIME=$OPTARG ;;
    o) OUT=$OPTARG ;;
    l) LABEL=$OPTARG ;;
    c) COUNT=$OPTARG ;;
    h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) exit 2 ;;
  esac
done

if [ -z "$LABEL" ]; then
  LABEL=$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "bench-json: running '$BENCH' at -benchtime $BENCHTIME, $COUNT sweep(s) ..." >&2
for _ in $(seq "$COUNT"); do
  go test -run xxx -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . | tee -a "$RAW" >&2
  go test -run xxx -bench "$HEAVY" -benchmem -benchtime "$HEAVYTIME" . | tee -a "$RAW" >&2
done

go run ./cmd/benchjson -label "$LABEL" -benchtime "$BENCHTIME" -out "$OUT" < "$RAW"
echo "bench-json: appended run '$LABEL' to $OUT" >&2
