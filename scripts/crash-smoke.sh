#!/usr/bin/env bash
# crash-smoke.sh — crash-recovery equivalence against the real daemon.
#
# Builds urpsm-serve, drives a 1500-request lockstep replay with two
# traffic epoch advances, SIGKILLs the process at CRASH_KILLS seeded
# points (mid-request, right after an ack, and once concurrently with a
# traffic POST), restarts it on the same WAL directory each time, and
# asserts the concatenated decision stream is byte-identical to an
# uninterrupted run — which is itself checked bit-exactly against the
# offline reference engine. See internal/crashtest.
#
#   scripts/crash-smoke.sh              # fixed seed (CI)
#   scripts/crash-smoke.sh -s 1234      # explicit seed (chaos mode)
#   scripts/crash-smoke.sh -k 9 -c 0.2  # more kills, bigger workload
set -euo pipefail
cd "$(dirname "$0")/.."

SEED=1
SCALE=0.1   # ChengduLike(0.1) = 1500 requests
KILLS=5     # plus one kill racing a traffic POST

while getopts "s:k:c:h" opt; do
  case $opt in
    s) SEED=$OPTARG ;;
    k) KILLS=$OPTARG ;;
    c) SCALE=$OPTARG ;;
    h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) exit 2 ;;
  esac
done

echo "crash-smoke: seed=$SEED scale=$SCALE kills=$KILLS(+1 traffic)"
CRASH_SEED=$SEED CRASH_SCALE=$SCALE CRASH_KILLS=$KILLS \
  go test ./internal/crashtest -run TestCrashRecoveryEquivalence -count=1 -v -timeout 15m
echo "crash-smoke: OK"
